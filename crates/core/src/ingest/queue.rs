//! Bounded per-shard ingest queues with a block-reorder stage.
//!
//! Each shard worker owns one [`ShardQueue`]: a mutex-and-condvar MPSC
//! queue that carries position-stamped tuple batches *and* control
//! messages (register, deregister, stats, barriers). Capacity is
//! accounted in **tuples**, not messages, and only tuple batches count —
//! control traffic always gets through, so a saturated firehose can
//! never wedge registration or shutdown.
//!
//! In front of the worker FIFO sits the **reorder stage**: producers of
//! the striped sequencer ([`crate::ingest`]) stage each position block's
//! per-shard slice with [`ShardQueue::stage_block`] in whatever order
//! their threads happen to run, and the sequencer broadcasts its low
//! watermark with [`ShardQueue::release_up_to`] once every older block
//! has completed. Pending entries are released to the FIFO in block-id
//! order — which is position order — so the single consumer still
//! observes strictly increasing positions. Blocks that routed nothing
//! to this shard simply have no entry and are skipped by the watermark;
//! a watermark broadcast that races an older one is ignored (releases
//! are monotone).
//!
//! Two backpressure behaviours are supported per staged block
//! ([`BackpressurePolicy`]): `Block` admits the slice whole and lets the
//! *producer* park afterwards in [`ShardQueue::wait_for_room`] (after
//! completing its block — a parked producer must never hold back the
//! watermark), and `DropNewest` truncates the incoming slice to the
//! remaining room, counting every dropped tuple. Capacity counts staged
//! tuples whether still pending in the reorder buffer or already
//! released to the FIFO.

use super::BackpressurePolicy;
use crate::evaluator::{EngineStats, StreamingEvaluator};
use crate::runtime::{Partition, QueryId, SharedEvalStats};
use crate::window::WindowPolicy;
use cer_automata::pcea::Pcea;
use cer_common::{RelationId, Tuple};
use cer_obs::Histogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The queue was closed (its runtime has shut down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Closed;

/// A released batch of position-stamped tuples, carrying the wall-clock
/// marks the latency histograms are computed from.
pub(crate) struct TupleBatch {
    /// The stamped tuples, in increasing position order.
    pub tuples: Vec<(u64, Tuple)>,
    /// Captured at `SeqCore::reserve` — the start of the end-to-end
    /// ingest→delivery clock. Coalescing keeps the earliest mark.
    pub ingest_at: Instant,
    /// When the reorder stage released the batch to the worker FIFO —
    /// the start of the drain-wait clock.
    pub released_at: Instant,
}

/// One shard's reply to a [`ShardMsg::Stats`] probe: the replying
/// shard's index, its per-query engine counters, and its shared-eval
/// cache counters.
pub(crate) type StatsReply = (usize, Vec<(QueryId, EngineStats)>, SharedEvalStats);

/// What travels to a shard worker. Tuple batches compete for queue
/// capacity; everything else is control traffic and always admitted.
pub(crate) enum ShardMsg {
    /// Position-stamped tuples in increasing position order.
    Tuples(TupleBatch),
    /// Host a new query on this shard. `state` carries a restored
    /// evaluator (checkpoint restore) instead of starting fresh.
    Register {
        id: QueryId,
        pcea: Pcea,
        window: WindowPolicy,
        partition: Partition,
        gc_every: u64,
        listens: Option<Vec<RelationId>>,
        state: Option<Box<StreamingEvaluator>>,
    },
    /// Epoch-block state fence shared by snapshot and rescale
    /// ([`crate::checkpoint`]): capture every hosted query's evaluator
    /// at exactly this point of the released position order and reply
    /// with the in-memory [`ShardState`]. `detach: false` (snapshot)
    /// clones the evaluators and keeps serving; `detach: true`
    /// (rescale) moves them out — the worker exits after replying and
    /// its queue is retired.
    Extract {
        detach: bool,
        reply: Sender<ShardState>,
    },
    /// Rescale install fence: adopt merged evaluators for the new shard
    /// topology. The whole shard's worth of queries rides one message
    /// because the reorder buffer keys entries by block id — a zero-
    /// width block carries exactly one control message per shard.
    /// Replies once the state is installed, i.e. this worker serves
    /// positions from the fence onward.
    Install {
        queries: Vec<InstallQuery>,
        reply: Sender<()>,
    },
    /// Hot-swap a hosted query's automaton in place
    /// (`Runtime::replace`): the accumulated state is handed to the
    /// recompiled automaton at exactly this point of the position
    /// order. Replies whether this shard hosted (and swapped) the
    /// query; compatibility was validated by the control plane.
    Replace {
        id: QueryId,
        pcea: Pcea,
        window: WindowPolicy,
        gc_every: u64,
        listens: Option<Vec<RelationId>>,
        reply: Sender<bool>,
    },
    /// Drop a hosted query; replies with its final engine counters
    /// (`None` if this shard never hosted it).
    Deregister {
        id: QueryId,
        reply: Sender<Option<EngineStats>>,
    },
    /// Report per-query engine counters (tagged with the replying
    /// shard's index, so the runtime can surface per-shard breakdowns
    /// alongside the summed totals).
    Stats { reply: Sender<StatsReply> },
    /// FIFO fence: the worker replies once every earlier message on this
    /// queue has been fully processed (tuples evaluated, match events
    /// published).
    Barrier { reply: Sender<()> },
}

/// One shard's reply to a [`ShardMsg::Extract`] fence: the movable
/// per-shard engine state — every hosted query's evaluator, captured at
/// the epoch position. This is the in-memory value the checkpoint wire
/// format encodes on the control plane ([`crate::checkpoint`]) and that
/// `Runtime::rescale` moves between worker sets with **zero**
/// encode/decode.
pub(crate) struct ShardState {
    /// Which shard replied.
    pub shard: usize,
    /// `(query, evaluator)` per hosted query, in hosting order.
    pub queries: Vec<(QueryId, Box<StreamingEvaluator>)>,
    /// How long the capture stalled this shard's worker, in nanoseconds
    /// (surfaced as a `RuntimeStats` counter by both snapshot and
    /// rescale).
    pub capture_nanos: u64,
}

/// One query's ready-to-serve state handed to a new worker during
/// `Runtime::rescale` — one element of [`ShardMsg::Install`]. The
/// evaluator carries its own automaton, window clock and GC cadence;
/// routing metadata rides alongside so the worker can rebuild its
/// local tables exactly as a restore-time register would.
pub(crate) struct InstallQuery {
    pub id: QueryId,
    pub partition: Partition,
    pub listens: Option<Vec<RelationId>>,
    pub state: Box<StreamingEvaluator>,
}

/// Occupancy counters of one shard queue, readable at any time.
///
/// # Monotone-since-start semantics
///
/// Every cumulative field — [`dropped`](Self::dropped),
/// [`drained_batches`](Self::drained_batches),
/// [`drained_tuples`](Self::drained_tuples),
/// [`reorder_released`](Self::reorder_released) — and every
/// watermark field — [`high_water`](Self::high_water),
/// [`max_drain_batch`](Self::max_drain_batch),
/// [`reorder_high_water`](Self::reorder_high_water) — is **monotone
/// non-decreasing over the runtime's lifetime**. Reading stats never
/// resets anything: the stats read is a pure copy of the
/// counters, so two consecutive reads r1, r2 always satisfy
/// `r1.field <= r2.field` for these fields. Only
/// [`depth`](Self::depth) and [`reorder_pending`](Self::reorder_pending)
/// are instantaneous levels that move both ways. Rate computation is
/// therefore the reader's job: sample twice and difference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tuples currently staged (pending in the reorder buffer or
    /// released to the FIFO, not yet picked up by the shard worker).
    pub depth: usize,
    /// Maximum `depth` ever observed.
    pub high_water: usize,
    /// Tuples dropped by [`BackpressurePolicy::DropNewest`].
    pub dropped: u64,
    /// Coalesced tuple batches handed to the shard worker so far (one
    /// per worker wakeup that yielded tuples).
    pub drained_batches: u64,
    /// Total tuples handed to the shard worker across those batches;
    /// `drained_tuples / drained_batches` is the mean evaluation batch
    /// size the worker actually saw.
    pub drained_tuples: u64,
    /// Largest single coalesced batch handed to the worker.
    pub max_drain_batch: usize,
    /// Blocks currently held in the reorder buffer, waiting for the
    /// sequencer's low watermark to pass them.
    pub reorder_pending: usize,
    /// Maximum `reorder_pending` ever observed — how far concurrent
    /// producers ran ahead of the oldest incomplete block on this shard.
    pub reorder_high_water: usize,
    /// Entries released from the reorder buffer to the worker FIFO so
    /// far (tuple blocks and ordered control messages).
    pub reorder_released: u64,
}

/// A reorder-buffer entry: one block's slice for this shard, or a
/// position-ordered control message riding a zero-width block.
enum Staged {
    Tuples {
        tuples: Vec<(u64, Tuple)>,
        /// The producer's reserve instant, forwarded onto the released
        /// [`TupleBatch`].
        ingest_at: Instant,
        /// When the slice entered the reorder buffer — start of the
        /// reorder-hold clock.
        staged_at: Instant,
    },
    Control(ShardMsg),
}

struct Inner {
    /// Released messages, in block order, ready for the worker.
    msgs: VecDeque<ShardMsg>,
    /// The reorder buffer: staged entries keyed by block id, awaiting
    /// the watermark.
    pending: BTreeMap<u64, Staged>,
    /// Highest watermark applied; `release_up_to` is monotone in it.
    released_watermark: u64,
    depth: usize,
    high_water: usize,
    dropped: u64,
    drained_batches: u64,
    drained_tuples: u64,
    max_drain: usize,
    reorder_high_water: usize,
    reorder_released: u64,
    closed: bool,
}

/// A bounded MPSC queue feeding one shard worker. Producers are the
/// striped sequencer's ingest paths (staging blocks out of order) and
/// the runtime's control plane; the single consumer is the shard worker.
pub(crate) struct ShardQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// How long released entries sat in the reorder buffer waiting for
    /// the sequencer watermark (one sample per released entry).
    pub reorder_hold: Histogram,
    /// How long released batches waited in the worker FIFO before the
    /// shard worker drained them (one sample per coalesced drain).
    pub queue_wait: Histogram,
    /// Lock-free mirror of `!inner.pending.is_empty()`, letting
    /// watermark broadcasts skip shards with nothing staged without
    /// touching their mutex. Safe to read stale-false only because any
    /// entry a broadcast must release was staged (and this flag raised)
    /// before its block completed — and completion happens-before the
    /// broadcast via the sequencer lock.
    has_pending: AtomicBool,
}

impl ShardQueue {
    pub fn new(capacity: usize) -> Self {
        ShardQueue {
            inner: Mutex::new(Inner {
                msgs: VecDeque::new(),
                pending: BTreeMap::new(),
                released_watermark: 0,
                depth: 0,
                high_water: 0,
                dropped: 0,
                drained_batches: 0,
                drained_tuples: 0,
                max_drain: 0,
                reorder_high_water: 0,
                reorder_released: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            reorder_hold: Histogram::new(),
            queue_wait: Histogram::new(),
            has_pending: AtomicBool::new(false),
        }
    }

    /// Stage one block's slice into the reorder buffer under `policy`.
    /// Returns how many tuples were dropped (`DropNewest` only — the
    /// slice is truncated to the remaining room; `Block` admits the
    /// slice whole and never drops, the producer parks later in
    /// [`wait_for_room`](Self::wait_for_room)).
    ///
    /// The entry stays pending until the sequencer watermark passes its
    /// block id; a block is staged at most once per shard, before its
    /// completion, so its id is always at or above the applied
    /// watermark.
    pub fn stage_block(
        &self,
        block: u64,
        mut tuples: Vec<(u64, Tuple)>,
        ingest_at: Instant,
        policy: BackpressurePolicy,
    ) -> Result<u64, Closed> {
        if tuples.is_empty() {
            return Ok(0);
        }
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        debug_assert!(
            block >= inner.released_watermark,
            "block {block} staged after watermark {}",
            inner.released_watermark
        );
        let dropped = match policy {
            BackpressurePolicy::Block => 0,
            BackpressurePolicy::DropNewest => {
                let room = self.capacity.saturating_sub(inner.depth);
                let dropped = tuples.len().saturating_sub(room) as u64;
                tuples.truncate(room);
                inner.dropped += dropped;
                dropped
            }
        };
        if !tuples.is_empty() {
            inner.depth += tuples.len();
            inner.high_water = inner.high_water.max(inner.depth);
            inner.pending.insert(
                block,
                Staged::Tuples {
                    tuples,
                    ingest_at,
                    staged_at: Instant::now(),
                },
            );
            inner.reorder_high_water = inner.reorder_high_water.max(inner.pending.len());
            self.has_pending.store(true, Ordering::Release);
        }
        Ok(dropped)
    }

    /// Stage a position-ordered control message (register, deregister,
    /// barrier) under a zero-width block id; bypasses the capacity bound
    /// and is never dropped.
    pub fn stage_control(&self, block: u64, msg: ShardMsg) -> Result<(), Closed> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        inner.pending.insert(block, Staged::Control(msg));
        inner.reorder_high_water = inner.reorder_high_water.max(inner.pending.len());
        self.has_pending.store(true, Ordering::Release);
        Ok(())
    }

    /// Apply a sequencer low watermark: move every pending entry with a
    /// block id below `watermark` to the worker FIFO, in block order.
    /// Monotone — a broadcast racing an older one is a no-op.
    ///
    /// Skipping when nothing is pending is sound: an entry this
    /// broadcast must release was staged — raising `has_pending` —
    /// strictly before its block completed, and the completion
    /// happens-before the broadcast through the sequencer lock, so the
    /// flag is visible by the time the broadcast reaches this shard. A
    /// skipped broadcast leaves `released_watermark` stale (a lower
    /// bound), which the next real release simply catches up past.
    pub fn release_up_to(&self, watermark: u64) {
        if !self.has_pending.load(Ordering::Acquire) {
            return;
        }
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if watermark <= inner.released_watermark {
            return;
        }
        inner.released_watermark = watermark;
        let mut moved = false;
        let released_at = Instant::now();
        while let Some(entry) = inner.pending.first_entry() {
            if *entry.key() >= watermark {
                break;
            }
            let msg = match entry.remove() {
                Staged::Tuples {
                    tuples,
                    ingest_at,
                    staged_at,
                } => {
                    self.reorder_hold
                        .record_duration(released_at.saturating_duration_since(staged_at));
                    ShardMsg::Tuples(TupleBatch {
                        tuples,
                        ingest_at,
                        released_at,
                    })
                }
                Staged::Control(msg) => msg,
            };
            inner.msgs.push_back(msg);
            inner.reorder_released += 1;
            moved = true;
        }
        if inner.pending.is_empty() {
            self.has_pending.store(false, Ordering::Release);
        }
        if moved {
            self.not_empty.notify_one();
        }
    }

    /// Enqueue an *unordered* control message (stats polls) directly on
    /// the worker FIFO; bypasses both the reorder stage and the capacity
    /// bound.
    pub fn push_control(&self, msg: ShardMsg) -> Result<(), Closed> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        if inner.closed {
            return Err(Closed);
        }
        inner.msgs.push_back(msg);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Park until the queue has room below its capacity bound (the
    /// `Block` policy's backpressure point, called by producers *after*
    /// completing their position block) or the queue closes. Returns
    /// whether the producer actually parked, so the caller can record
    /// the park episode without charging the uncontended fast path.
    ///
    /// A closed queue that *has* room reports success: the producer's
    /// batch was already admitted, and a rescale retires (drains, then
    /// closes) old queues concurrently with producers that staged into
    /// them — only a close that strands the producer at a full queue is
    /// an error. The next `stage_block` still fails fast.
    pub fn wait_for_room(&self) -> Result<bool, Closed> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        let mut parked = false;
        while inner.depth >= self.capacity && !inner.closed {
            parked = true;
            inner = self.not_full.wait(inner).expect("ingest queue poisoned");
        }
        if inner.closed && inner.depth >= self.capacity {
            return Err(Closed);
        }
        Ok(parked)
    }

    /// Blocking pop without coalescing (`pop_batch(1)`), for tests.
    #[cfg(test)]
    pub fn pop(&self) -> Option<ShardMsg> {
        self.pop_batch(1)
    }

    /// Blocking pop for the shard worker. Returns `None` once the queue
    /// is closed *and* the released FIFO is fully drained, so no
    /// released work is ever lost (entries still pending in the reorder
    /// buffer at close belong to blocks that can no longer complete and
    /// are abandoned with the shutdown).
    ///
    /// When the front message is a tuple batch, consecutive tuple
    /// batches already queued behind it are opportunistically coalesced
    /// into one slice until it reaches `max_batch` tuples, so a worker
    /// that fell behind evaluates in large batches instead of one
    /// sequencer push at a time. Coalescing only ever merges
    /// front-of-queue neighbours and never crosses a control message,
    /// so FIFO ordering (and barrier semantics) is preserved; the slice
    /// may overshoot `max_batch` by at most one producer batch.
    pub fn pop_batch(&self, max_batch: usize) -> Option<ShardMsg> {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        loop {
            if let Some(msg) = inner.msgs.pop_front() {
                let msg = match msg {
                    ShardMsg::Tuples(mut batch) => {
                        // Merging keeps the *front* batch's wall-clock
                        // marks: FIFO order is block order, so they are
                        // the earliest — the e2e and drain-wait clocks
                        // measure the oldest tuple in the merged slice.
                        while batch.tuples.len() < max_batch
                            && matches!(inner.msgs.front(), Some(ShardMsg::Tuples(_)))
                        {
                            match inner.msgs.pop_front() {
                                Some(ShardMsg::Tuples(more)) => batch.tuples.extend(more.tuples),
                                _ => unreachable!("front was a tuple batch"),
                            }
                        }
                        inner.depth -= batch.tuples.len();
                        inner.drained_batches += 1;
                        inner.drained_tuples += batch.tuples.len() as u64;
                        inner.max_drain = inner.max_drain.max(batch.tuples.len());
                        self.queue_wait.record_duration(batch.released_at.elapsed());
                        self.not_full.notify_all();
                        ShardMsg::Tuples(batch)
                    }
                    control => control,
                };
                return Some(msg);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("ingest queue poisoned");
        }
    }

    /// Close the queue: producers fail fast, the worker drains what was
    /// released and exits.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("ingest queue poisoned");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("ingest queue poisoned");
        QueueStats {
            depth: inner.depth,
            high_water: inner.high_water,
            dropped: inner.dropped,
            drained_batches: inner.drained_batches,
            drained_tuples: inner.drained_tuples,
            max_drain_batch: inner.max_drain,
            reorder_pending: inner.pending.len(),
            reorder_high_water: inner.reorder_high_water,
            reorder_released: inner.reorder_released,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    fn stamped(r: cer_common::RelationId, start: u64, n: usize) -> Vec<(u64, Tuple)> {
        (0..n)
            .map(|i| (start + i as u64, tup(r, [i as i64])))
            .collect()
    }

    /// Stage one block and release it immediately, the single-producer
    /// fast path.
    fn stage_released(
        q: &ShardQueue,
        block: u64,
        tuples: Vec<(u64, Tuple)>,
        policy: BackpressurePolicy,
    ) -> Result<u64, Closed> {
        let dropped = q.stage_block(block, tuples, Instant::now(), policy)?;
        q.release_up_to(block + 1);
        Ok(dropped)
    }

    /// Stage a block with a fresh ingest mark (the non-test path takes
    /// the mark at `SeqCore::reserve`).
    fn stage(
        q: &ShardQueue,
        block: u64,
        tuples: Vec<(u64, Tuple)>,
        policy: BackpressurePolicy,
    ) -> Result<u64, Closed> {
        q.stage_block(block, tuples, Instant::now(), policy)
    }

    #[test]
    fn out_of_order_blocks_release_in_block_order() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(100);
        // Three blocks staged newest-first, as racing producers would.
        stage(&q, 2, stamped(r, 20, 2), BackpressurePolicy::Block).unwrap();
        stage(&q, 1, stamped(r, 10, 2), BackpressurePolicy::Block).unwrap();
        assert_eq!(q.stats().reorder_pending, 2);
        // Watermark stuck below the oldest block: nothing released, the
        // worker would still be waiting.
        q.release_up_to(0);
        assert_eq!(q.stats().reorder_released, 0);
        stage(&q, 0, stamped(r, 0, 2), BackpressurePolicy::Block).unwrap();
        assert_eq!(q.stats().reorder_high_water, 3);
        // Watermark passes all three (a stale broadcast racing in later
        // must be a no-op).
        q.release_up_to(3);
        q.release_up_to(1);
        let mut seen = Vec::new();
        for _ in 0..3 {
            match q.pop().unwrap() {
                ShardMsg::Tuples(b) => seen.extend(b.tuples.iter().map(|(i, _)| *i)),
                _ => panic!("tuples only"),
            }
        }
        // Two latency histograms saw every released/drained batch.
        assert_eq!(q.reorder_hold.count(), 3);
        assert_eq!(q.queue_wait.count(), 3);
        assert_eq!(
            seen,
            vec![0, 1, 10, 11, 20, 21],
            "released in position order"
        );
        let st = q.stats();
        assert_eq!((st.reorder_pending, st.reorder_released), (0, 3));
        assert_eq!(st.depth, 0);
    }

    #[test]
    fn drop_newest_truncates_and_counts_through_the_reorder_stage() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(3);
        let dropped =
            stage_released(&q, 0, stamped(r, 0, 5), BackpressurePolicy::DropNewest).unwrap();
        assert_eq!(dropped, 2);
        let st = q.stats();
        assert_eq!((st.depth, st.high_water, st.dropped), (3, 3, 2));
        // Full: everything new is dropped (whether pending or released,
        // staged tuples count), control still gets through.
        let dropped =
            stage_released(&q, 1, stamped(r, 5, 2), BackpressurePolicy::DropNewest).unwrap();
        assert_eq!(dropped, 2);
        let (tx, rx) = std::sync::mpsc::channel();
        q.stage_control(2, ShardMsg::Barrier { reply: tx }).unwrap();
        q.release_up_to(3);
        match q.pop().unwrap() {
            ShardMsg::Tuples(b) => assert_eq!(b.tuples.len(), 3),
            _ => panic!("tuples first"),
        }
        match q.pop().unwrap() {
            ShardMsg::Barrier { reply } => reply.send(()).unwrap(),
            _ => panic!("barrier second"),
        }
        rx.recv().unwrap();
        assert_eq!(q.stats().depth, 0);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max_but_never_crosses_control() {
        let (_, r, _, _) = Schema::sigma0();
        let q = ShardQueue::new(100);
        // Three consecutive tuple blocks, a barrier, then one more.
        stage(&q, 0, stamped(r, 0, 3), BackpressurePolicy::Block).unwrap();
        stage(&q, 1, stamped(r, 3, 3), BackpressurePolicy::Block).unwrap();
        stage(&q, 2, stamped(r, 6, 3), BackpressurePolicy::Block).unwrap();
        let (tx, _rx) = std::sync::mpsc::channel();
        q.stage_control(3, ShardMsg::Barrier { reply: tx }).unwrap();
        stage(&q, 4, stamped(r, 9, 2), BackpressurePolicy::Block).unwrap();
        q.release_up_to(5);
        // max_batch 5: the first two blocks coalesce (3 < 5, then 6 ≥ 5
        // — overshoot by at most one producer batch), the third stays.
        match q.pop_batch(5).unwrap() {
            ShardMsg::Tuples(b) => assert_eq!(b.tuples.len(), 6),
            _ => panic!("tuples first"),
        }
        // The third block never merges across the barrier.
        match q.pop_batch(100).unwrap() {
            ShardMsg::Tuples(b) => assert_eq!(b.tuples.len(), 3),
            _ => panic!("tuples second"),
        }
        assert!(matches!(
            q.pop_batch(100).unwrap(),
            ShardMsg::Barrier { .. }
        ));
        match q.pop_batch(100).unwrap() {
            ShardMsg::Tuples(b) => assert_eq!(b.tuples.len(), 2),
            _ => panic!("tuples last"),
        }
        let st = q.stats();
        assert_eq!(st.depth, 0);
        assert_eq!(st.drained_batches, 3);
        assert_eq!(st.drained_tuples, 11);
        assert_eq!(st.max_drain_batch, 6);
    }

    #[test]
    fn wait_for_room_parks_until_drained_and_close_drains_released() {
        let (_, r, _, _) = Schema::sigma0();
        let q = std::sync::Arc::new(ShardQueue::new(2));
        stage_released(&q, 0, stamped(r, 0, 2), BackpressurePolicy::Block).unwrap();
        // Over-capacity staging is admitted whole (soft bound)...
        stage_released(&q, 1, stamped(r, 2, 2), BackpressurePolicy::Block).unwrap();
        assert_eq!(q.stats().depth, 4);
        // ...and the producer then parks in wait_for_room until the
        // consumer drains below the bound.
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.wait_for_room())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!producer.is_finished());
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert_eq!(producer.join().unwrap(), Ok(true), "the producer parked");
        stage_released(&q, 2, stamped(r, 4, 1), BackpressurePolicy::Block).unwrap();
        q.close();
        // The released batch survives the close; then the queue reports
        // exhaustion and producers fail fast.
        assert!(matches!(q.pop(), Some(ShardMsg::Tuples(_))));
        assert!(q.pop().is_none());
        assert_eq!(
            q.stage_block(
                3,
                stamped(r, 5, 1),
                Instant::now(),
                BackpressurePolicy::Block
            ),
            Err(Closed)
        );
        // Closed with room (fully drained, as a rescale leaves retired
        // queues): the admitted batch was not stranded, so no error.
        assert_eq!(q.wait_for_room(), Ok(false));
        // Closed while still at/over capacity: the producer is stranded.
        let full = ShardQueue::new(1);
        stage_released(&full, 0, stamped(r, 0, 2), BackpressurePolicy::Block).unwrap();
        full.close();
        assert_eq!(full.wait_for_room(), Err(Closed));
    }
}

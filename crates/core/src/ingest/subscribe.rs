//! The subscription registry: per-consumer bounded match-event channels.
//!
//! Shard workers publish every [`MatchEvent`] they complete to the
//! registry; each subscriber owns its *own* bounded queue with its own
//! [`BackpressurePolicy`], so a slow or stalled consumer lags or drops
//! on its private channel without ever stalling ingestion (use
//! [`BackpressurePolicy::DropNewest`] for that guarantee — a `Block`
//! subscriber that never drains *will* eventually park the shard
//! workers, which is the explicit opt-in "lossless but stalling"
//! trade-off).
//!
//! Subscriptions filter per query ([`SubscriptionFilter::Query`]) or
//! receive everything ([`SubscriptionFilter::All`]). Dropping a
//! [`Subscription`] closes its queue; publishers skip closed queues and
//! the registry prunes them on the next subscribe. Runtime shutdown
//! closes every channel from the other side
//! ([`SubscriptionRegistry::close_all`]) — waking publishers parked on
//! full `Block` channels so the shard workers can exit — while events
//! already queued stay readable by the consumer.

use super::BackpressurePolicy;
use crate::runtime::{MatchEvent, QueryId};
use cer_obs::Histogram;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Which match events a subscription receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscriptionFilter {
    /// Every query's events.
    All,
    /// Only one query's events.
    Query(QueryId),
}

impl SubscriptionFilter {
    fn accepts(&self, q: QueryId) -> bool {
        match self {
            SubscriptionFilter::All => true,
            SubscriptionFilter::Query(id) => *id == q,
        }
    }
}

struct SubInner {
    events: VecDeque<MatchEvent>,
    dropped: u64,
    closed: bool,
}

struct SubQueue {
    inner: Mutex<SubInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
    filter: SubscriptionFilter,
}

impl SubQueue {
    /// Publisher side: offer one event, honouring the subscriber's
    /// capacity and policy.
    fn offer(&self, event: &MatchEvent) {
        let mut inner = self.inner.lock().expect("subscription queue poisoned");
        if inner.closed {
            return;
        }
        match self.policy {
            BackpressurePolicy::Block => {
                while inner.events.len() >= self.capacity && !inner.closed {
                    inner = self
                        .not_full
                        .wait(inner)
                        .expect("subscription queue poisoned");
                }
                if inner.closed {
                    return;
                }
            }
            BackpressurePolicy::DropNewest => {
                if inner.events.len() >= self.capacity {
                    inner.dropped += 1;
                    return;
                }
            }
        }
        inner.events.push_back(event.clone());
        self.not_empty.notify_one();
    }
}

/// The shared registry of live subscriptions. Publishing takes a read
/// lock, so shard workers publish concurrently; subscribing takes the
/// write lock and prunes queues whose `Subscription` was dropped.
#[derive(Default)]
pub(crate) struct SubscriptionRegistry {
    subs: RwLock<Vec<Arc<SubQueue>>>,
    /// Wall time of each [`publish`](Self::publish) call, including any
    /// park on a full `Block` subscriber channel — so a stalled
    /// lossless consumer shows up here as a fat delivery tail.
    pub delivery: Histogram,
}

impl SubscriptionRegistry {
    /// Open a subscription with the given filter, capacity (in events)
    /// and backpressure policy.
    pub fn subscribe(
        &self,
        filter: SubscriptionFilter,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Subscription {
        let queue = Arc::new(SubQueue {
            inner: Mutex::new(SubInner {
                events: VecDeque::new(),
                dropped: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            filter,
        });
        let mut subs = self.subs.write().expect("subscription registry poisoned");
        subs.retain(|s| !s.inner.lock().expect("subscription queue poisoned").closed);
        subs.push(queue.clone());
        Subscription { queue }
    }

    /// Publish one completed match to every live matching subscriber.
    pub fn publish(&self, event: &MatchEvent) {
        let at = Instant::now();
        let subs = self.subs.read().expect("subscription registry poisoned");
        for sub in subs.iter() {
            if sub.filter.accepts(event.query) {
                sub.offer(event);
            }
        }
        self.delivery.record_duration(at.elapsed());
    }

    /// Close every subscriber channel and wake anyone parked on it:
    /// publishers parked in [`SubQueue::offer`] on a full `Block`
    /// channel return immediately, and publishers skip closed channels
    /// afterwards. Called by the ingest pipeline's shutdown so a shard
    /// worker wedged on an undrained subscription cannot hang
    /// `Runtime::drop`. Events already queued stay readable; consumers
    /// waiting in `recv_timeout` return `None` early.
    pub fn close_all(&self) {
        let subs = self.subs.read().expect("subscription registry poisoned");
        for sub in subs.iter() {
            let mut inner = sub.inner.lock().expect("subscription queue poisoned");
            inner.closed = true;
            sub.not_full.notify_all();
            sub.not_empty.notify_all();
        }
    }

    /// Whether any live subscriber would accept events for `q` — lets
    /// shard workers skip valuation cloning entirely on quiet queries.
    pub fn has_subscriber_for(&self, q: QueryId) -> bool {
        let subs = self.subs.read().expect("subscription registry poisoned");
        subs.iter().any(|s| {
            s.filter.accepts(q) && !s.inner.lock().expect("subscription queue poisoned").closed
        })
    }
}

/// The consumer end of one match-event channel. Created by
/// `Runtime::subscribe`; dropping it closes the channel and publishers
/// stop delivering to it.
pub struct Subscription {
    queue: Arc<SubQueue>,
}

impl Subscription {
    /// Take one event if one is queued.
    pub fn try_recv(&self) -> Option<MatchEvent> {
        let mut inner = self
            .queue
            .inner
            .lock()
            .expect("subscription queue poisoned");
        let ev = inner.events.pop_front();
        if ev.is_some() {
            self.queue.not_full.notify_all();
        }
        ev
    }

    /// Wait up to `timeout` for one event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<MatchEvent> {
        let deadline = Instant::now() + timeout;
        let mut inner = self
            .queue
            .inner
            .lock()
            .expect("subscription queue poisoned");
        loop {
            if let Some(ev) = inner.events.pop_front() {
                self.queue.not_full.notify_all();
                return Some(ev);
            }
            // A closed empty channel can never fill again (the runtime
            // shut down): return early instead of sleeping the timeout.
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .queue
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("subscription queue poisoned");
            inner = guard;
        }
    }

    /// Take everything currently queued, without waiting.
    pub fn drain(&self) -> Vec<MatchEvent> {
        let mut inner = self
            .queue
            .inner
            .lock()
            .expect("subscription queue poisoned");
        let out: Vec<MatchEvent> = inner.events.drain(..).collect();
        if !out.is_empty() {
            self.queue.not_full.notify_all();
        }
        out
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.queue
            .inner
            .lock()
            .expect("subscription queue poisoned")
            .events
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped on this channel by
    /// [`BackpressurePolicy::DropNewest`].
    pub fn dropped(&self) -> u64 {
        self.queue
            .inner
            .lock()
            .expect("subscription queue poisoned")
            .dropped
    }

    /// The subscription's filter.
    pub fn filter(&self) -> SubscriptionFilter {
        self.queue.filter
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut inner = self
            .queue
            .inner
            .lock()
            .expect("subscription queue poisoned");
        inner.closed = true;
        // Wake a publisher parked on a full queue so it observes the
        // close instead of waiting forever.
        self.queue.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_automata::valuation::Valuation;

    fn ev(q: u32, pos: u64) -> MatchEvent {
        MatchEvent {
            position: pos,
            query: QueryId(q),
            valuation: Valuation::default(),
        }
    }

    #[test]
    fn filters_and_drop_counting() {
        let reg = SubscriptionRegistry::default();
        let all = reg.subscribe(SubscriptionFilter::All, 2, BackpressurePolicy::DropNewest);
        let only1 = reg.subscribe(
            SubscriptionFilter::Query(QueryId(1)),
            8,
            BackpressurePolicy::DropNewest,
        );
        for pos in 0..4 {
            reg.publish(&ev((pos % 2) as u32, pos));
        }
        // `all` capped at 2, dropped the rest; `only1` saw only query 1.
        assert_eq!(all.len(), 2);
        assert_eq!(all.dropped(), 2);
        let got = only1.drain();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.query == QueryId(1)));
        assert_eq!(only1.dropped(), 0);
    }

    #[test]
    fn dropped_subscription_stops_receiving_and_is_pruned() {
        let reg = SubscriptionRegistry::default();
        let sub = reg.subscribe(SubscriptionFilter::All, 1, BackpressurePolicy::Block);
        assert!(reg.has_subscriber_for(QueryId(0)));
        drop(sub);
        assert!(!reg.has_subscriber_for(QueryId(0)));
        // Publishing to a closed full queue must not block.
        reg.publish(&ev(0, 0));
        let again = reg.subscribe(SubscriptionFilter::All, 1, BackpressurePolicy::Block);
        assert_eq!(reg.subs.read().unwrap().len(), 1, "closed queue pruned");
        drop(again);
    }

    #[test]
    fn close_all_wakes_parked_publishers_and_keeps_queued_events() {
        let reg = Arc::new(SubscriptionRegistry::default());
        let sub = reg.subscribe(SubscriptionFilter::All, 1, BackpressurePolicy::Block);
        reg.publish(&ev(0, 0));
        // A publisher parked on the full Block channel (this is the
        // shutdown-hang shape: a shard worker stuck in offer()).
        let publisher = {
            let reg = reg.clone();
            std::thread::spawn(move || reg.publish(&ev(0, 1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert!(!publisher.is_finished());
        reg.close_all();
        publisher.join().unwrap();
        // The event queued before the close stays readable; the one the
        // parked publisher held is discarded; later publishes are
        // skipped and subscriber checks report no listeners.
        assert_eq!(sub.drain().len(), 1);
        reg.publish(&ev(0, 2));
        assert!(sub.is_empty());
        assert!(!reg.has_subscriber_for(QueryId(0)));
        // recv_timeout returns early on the closed empty channel.
        let t0 = Instant::now();
        assert!(sub.recv_timeout(Duration::from_secs(30)).is_none());
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn blocked_publisher_wakes_on_consume_and_close() {
        let reg = Arc::new(SubscriptionRegistry::default());
        let sub = reg.subscribe(SubscriptionFilter::All, 1, BackpressurePolicy::Block);
        reg.publish(&ev(0, 0));
        let publisher = {
            let reg = reg.clone();
            std::thread::spawn(move || {
                reg.publish(&ev(0, 1));
                reg.publish(&ev(0, 2));
            })
        };
        // Drain one slot at a time; the publisher advances each time.
        assert_eq!(
            sub.recv_timeout(Duration::from_secs(5)).unwrap().position,
            0
        );
        assert_eq!(
            sub.recv_timeout(Duration::from_secs(5)).unwrap().position,
            1
        );
        // Close while the publisher may be parked on the last event.
        drop(sub);
        publisher.join().unwrap();
    }
}

//! Asynchronous ingestion: sequenced, backpressured, subscription-fed.
//!
//! The synchronous [`Runtime::push_batch`](crate::runtime::Runtime::push_batch)
//! couples three things that a production firehose wants decoupled:
//! stamping stream positions, evaluating tuples on the shards, and
//! delivering completed matches to consumers. This module splits them
//! into a pipeline:
//!
//! ```text
//!  producers (any thread, cloned IngestHandle)
//!      │  push / push_batch
//!      ▼
//!  ┌─────────────┐   short lock: reserve a contiguous position block
//!  │  sequencer  │   and snapshot the router epoch — nothing else
//!  └─────────────┘
//!      │ route, hash partition keys, clone and stage — all OUTSIDE
//!      │ the lock, concurrently across producers
//!      ▼
//!  ┌─────────────┐  ┌─────────────┐
//!  │ shard 0     │  │ shard k     │   per-shard reorder stage releases
//!  │ reorder ▸   │… │ reorder ▸   │   staged blocks to the FIFO in
//!  │ ShardQueue  │  │ ShardQueue  │   block order; workers drain,
//!  └─────────────┘  └─────────────┘   evaluate, publish MatchEvents
//!      │                 │
//!      ▼                 ▼
//!  ┌───────────────────────────────┐
//!  │     subscription registry     │  per-consumer bounded channels
//!  └───────────────────────────────┘
//!      │ Subscription (per QueryId or All)
//!      ▼
//!  consumers — may lag or drop without stalling ingestion
//! ```
//!
//! # The striped sequencer
//!
//! Each `push_batch` **reserves** a contiguous block of global positions
//! with one short lock acquisition (`SeqCore::reserve`): the block's
//! position range, a dense *block id*, and an [`Arc`] snapshot of the
//! current routing tables. Routing (`Router::shard_mask`), partition-key
//! hashing and tuple cloning then happen entirely **outside** the lock,
//! so concurrent producers stripe that per-tuple work across their own
//! threads instead of serializing it. Each shard's slice of the block is
//! staged into that shard's *reorder buffer*, and the producer finally
//! marks the block **complete** (a second short lock).
//!
//! Because blocks from concurrent producers are staged out of order, the
//! per-shard reorder stage holds staged blocks until the **low
//! watermark** — the smallest block id not yet complete — passes them,
//! then releases them to the worker FIFO in block-id order. Block ids are
//! assigned in the same order as position ranges, so released batches
//! reach each shard worker in strictly increasing position order. A
//! producer can never wedge the watermark: reservation and completion
//! bracket a single `push_batch` call, every exit path (including queue
//! closure and drops) completes the block, and producers park for
//! backpressure only *after* completing — so every reserved block
//! completes in bounded time and sparse or empty blocks (blocks that
//! routed nothing to a shard) simply have no entry to release.
//!
//! Control traffic rides the same order: `IngestShared::barrier`,
//! registration and deregistration each reserve a **zero-width** block
//! (no positions) and stage their control message into the reorder
//! buffers under that block id. A barrier is therefore delivered to a
//! worker only after every block reserved before it — *staged or not* —
//! has completed and been released: the watermark cannot pass a
//! reserved-but-unstaged block, which is exactly the fence `drain()`
//! needs. Registration mutates the routing tables and reserves its
//! zero-width block under the same lock acquisition, so a block's router
//! snapshot agrees with its position in block order: blocks before the
//! registration were routed with the old tables and are delivered ahead
//! of the `Register` message, blocks after with the new tables, behind
//! it.
//!
//! # Position-sequencing soundness
//!
//! Why are the asynchronously delivered outputs identical (as a
//! multiset) to the synchronous path? Three invariants carry the
//! argument:
//!
//! 1. **Global, gap-free stamping; per-shard order restored by the
//!    reorder stage.** Reservation assigns each ingested batch the next
//!    contiguous position range, so stamping is gap-free across
//!    producers. Staging is concurrent and out of order, but a shard
//!    worker only ever sees batches *released* by the reorder stage — in
//!    block-id order, which is position order. So every shard receives
//!    exactly the subsequence routed to it, in strictly increasing
//!    position order — the precondition of
//!    [`StreamingEvaluator::push_at`](crate::evaluator::StreamingEvaluator::push_at).
//! 2. **Window expiry is position-functional.** The
//!    [`WindowClock`](crate::window::WindowClock) computes expiry
//!    bounds from the stamped position (count windows) or from the
//!    tuple's own timestamp attribute (time windows) — never from
//!    arrival time, queue depth, or which shard observes the tuple. A
//!    shard evaluator that sees a *gappy* subsequence therefore
//!    computes the same bound the dense evaluator would, and neither
//!    queueing delay nor reorder-stage buffering can shift window
//!    semantics: a batch held in the reorder buffer is evaluated at its
//!    *stamped* positions whenever it is released. (Time windows
//!    additionally assume the documented non-decreasing-timestamp
//!    contract — see the hazard note in [`crate::window`] about what the
//!    clamp does to contract-violating streams, and the
//!    `ts_regressions` counter that detects them.)
//! 3. **Evaluation is deterministic per shard.** Each worker processes
//!    its queue serially, so the set of matches completed at position
//!    `i` is a function of the routed subsequence up to `i` alone.
//!
//! Hence, for every query, the multiset of
//! [`MatchEvent`](crate::runtime::MatchEvent)s published to
//! the registry equals the synchronous `push_batch` output on the same
//! stream — shard count, queue capacity, producer count, reorder-stage
//! buffering and consumer speed only reorder *delivery*, never
//! membership. The guarantee assumes no tuple was dropped:
//! [`BackpressurePolicy::Block`] never drops, while
//! [`BackpressurePolicy::DropNewest`] trades completeness for a
//! never-blocking producer and counts every tuple it sheds (per shard
//! queue, in [`QueueStats::dropped`]).
//!
//! `tests/ingest_async.rs` checks the equivalence differentially across
//! shard counts, producer counts, partition modes and both window kinds
//! (reconstructing the stamped order from the producers' receipts and
//! replaying it synchronously), and checks that a deliberately stalled
//! subscriber never blocks producers under `DropNewest`.
//!
//! # Example
//!
//! ```
//! use cer_core::ingest::SubscriptionFilter;
//! use cer_core::runtime::{QuerySpec, Runtime};
//! use cer_core::window::WindowPolicy;
//! use cer_automata::pcea::paper_p0;
//! use cer_common::gen::sigma0_prefix;
//! use cer_common::Schema;
//!
//! let (_, r, s, t) = Schema::sigma0();
//! let mut rt = Runtime::new(2);
//! let q = rt
//!     .register(QuerySpec::new("p0", paper_p0(r, s, t), WindowPolicy::Count(100)))
//!     .unwrap();
//! let sub = rt.subscribe(SubscriptionFilter::Query(q));
//! let handle = rt.ingest_handle();
//! let producer = std::thread::spawn(move || {
//!     for tuple in sigma0_prefix(r, s, t) {
//!         handle.push(&tuple).unwrap();
//!     }
//! });
//! producer.join().unwrap();
//! rt.drain(); // fence: everything ingested is evaluated and delivered
//! let events = sub.drain();
//! assert_eq!(events.len(), 2);
//! assert!(events.iter().all(|e| e.query == q && e.position == 5));
//! ```

mod queue;
mod subscribe;

pub use queue::QueueStats;
pub use subscribe::{Subscription, SubscriptionFilter};

pub(crate) use queue::{Closed, InstallQuery, ShardMsg, ShardQueue, ShardState};
pub(crate) use subscribe::SubscriptionRegistry;

use crate::metrics::{PipelineEvent, PipelineMetrics};
use crate::runtime::Partition;
use cer_common::hash::{FxBuildHasher, FxHashMap};
use cer_common::{RelationId, Tuple};
use std::collections::VecDeque;
use std::fmt;
use std::hash::BuildHasher;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a producer does when a shard queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Park the producer until the shard worker drains room. Lossless;
    /// a saturated shard slows the firehose down to its pace.
    #[default]
    Block,
    /// Drop the newest tuples that do not fit, counting them
    /// ([`QueueStats::dropped`]). The producer never blocks.
    DropNewest,
}

/// Construction-time knobs of the ingestion pipeline
/// (`Runtime::with_config`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestConfig {
    /// Per-shard queue capacity, in tuples. The bound is soft under
    /// [`BackpressurePolicy::Block`]: a batch is admitted whole and the
    /// producer parks *afterwards* until the shard drains below the
    /// bound (completing its position block first, so a parked producer
    /// can never hold back the reorder watermark). Occupancy can
    /// therefore overshoot by one in-flight batch per producer.
    pub queue_capacity: usize,
    /// What [`IngestHandle`] producers do when a shard queue is full.
    /// The synchronous `push_batch` path always blocks (it promises
    /// every match back), whatever this says.
    pub policy: BackpressurePolicy,
    /// Target evaluation batch size, in tuples: each shard-worker wakeup
    /// opportunistically drains consecutive queued tuple batches into
    /// one slice until it reaches this many tuples (it may overshoot by
    /// at most one producer batch), then evaluates the slice through the
    /// vectorized batch path. Larger values amortize per-wakeup
    /// bookkeeping under backlog; the worker never *waits* to fill a
    /// batch, so latency under light load is unaffected. The batch
    /// sizes actually seen are reported in
    /// [`QueueStats::drained_batches`] / [`QueueStats::drained_tuples`] /
    /// [`QueueStats::max_drain_batch`].
    pub max_batch: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 1 << 16,
            policy: BackpressurePolicy::Block,
            max_batch: 4096,
        }
    }
}

/// Why an ingest operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The runtime was dropped or shut down; its shard workers are gone.
    RuntimeClosed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::RuntimeClosed => write!(f, "the runtime has shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

/// What one `push_batch` on an [`IngestHandle`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The global positions stamped onto the batch, in order.
    pub positions: Range<u64>,
    /// Tuples dropped across shard queues
    /// ([`BackpressurePolicy::DropNewest`] only). A tuple routed to
    /// several shards counts once per queue that shed it.
    pub dropped: u64,
}

/// Routing metadata for one registered query, kept so tables can be
/// rebuilt when a query is deregistered.
#[derive(Clone)]
pub(crate) struct QueryMeta {
    pub alive: bool,
    pub partition: Partition,
    pub listens: Option<Vec<RelationId>>,
    /// Shards hosting the query (one for `ByQuery`, all for `ByKey`).
    pub homes: Vec<usize>,
}

/// The relation → shard routing tables, derivable from the live
/// [`QueryMeta`]s at any time. Producers route against an [`Arc`]
/// snapshot taken with their block reservation; registration swaps in a
/// rebuilt copy, so a block's snapshot agrees with its block-order
/// position relative to the `Register`/`Deregister` control block.
#[derive(Clone, Default)]
pub(crate) struct Router {
    pub metas: Vec<QueryMeta>,
    /// Shards hosting a pinned query that listens to this relation.
    fixed_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Partition-attribute positions of key-partitioned queries
    /// listening to this relation.
    key_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Shards hosting pinned queries with unconfined predicates.
    wildcard_fixed: Vec<usize>,
    /// Partition positions of key-partitioned unconfined queries.
    wildcard_keys: Vec<usize>,
}

impl Router {
    /// Recompute every table from the live query metadata.
    pub fn rebuild(&mut self) {
        self.fixed_routes.clear();
        self.key_routes.clear();
        self.wildcard_fixed.clear();
        self.wildcard_keys.clear();
        for meta in self.metas.iter().filter(|m| m.alive) {
            match meta.partition {
                Partition::ByQuery => {
                    let shard = meta.homes[0];
                    match &meta.listens {
                        Some(rels) => {
                            for &rel in rels {
                                let route = self.fixed_routes.entry(rel).or_default();
                                if !route.contains(&shard) {
                                    route.push(shard);
                                }
                            }
                        }
                        None => {
                            if !self.wildcard_fixed.contains(&shard) {
                                self.wildcard_fixed.push(shard);
                            }
                        }
                    }
                }
                Partition::ByKey { pos } => match &meta.listens {
                    Some(rels) => {
                        for &rel in rels {
                            let route = self.key_routes.entry(rel).or_default();
                            if !route.contains(&pos) {
                                route.push(pos);
                            }
                        }
                    }
                    None => {
                        if !self.wildcard_keys.contains(&pos) {
                            self.wildcard_keys.push(pos);
                        }
                    }
                },
            }
        }
    }

    /// Number of live pinned (`ByQuery`) queries homed on each shard —
    /// the load metric for placing the next pinned query.
    pub fn pinned_per_shard(&self, n_shards: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_shards];
        for meta in self.metas.iter().filter(|m| m.alive) {
            if meta.partition == Partition::ByQuery {
                counts[meta.homes[0]] += 1;
            }
        }
        counts
    }

    /// Bitmask of shards the tuple must reach.
    fn shard_mask(&self, hasher: &FxBuildHasher, t: &Tuple, n_shards: usize) -> u64 {
        let rel = t.relation();
        let mut mask: u64 = 0;
        if let Some(route) = self.fixed_routes.get(&rel) {
            for &s in route {
                mask |= 1 << s;
            }
        }
        for &s in &self.wildcard_fixed {
            mask |= 1 << s;
        }
        for &pos in self
            .key_routes
            .get(&rel)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .chain(&self.wildcard_keys)
        {
            mask |= 1 << key_shard(hasher, t, pos, n_shards);
        }
        mask
    }
}

/// The sequencer's mutable core: the only state producers serialize on.
/// A lock acquisition here reserves positions, assigns a block id and
/// snapshots the router — everything else (routing, hashing, cloning,
/// staging) happens outside, striped across producer threads.
pub(crate) struct SeqCore {
    /// The next global position to stamp.
    pub next_pos: u64,
    /// The next WAL sequence number. Every operation that needs replay
    /// (nonempty batch, register, deregister, replace) takes exactly
    /// one, inside the same lock acquisition that reserves its block —
    /// so `wal_seq` order is block order, which positions alone cannot
    /// express (zero-width control blocks share a position with the
    /// batch reserved next). Advances whether or not a WAL is attached,
    /// so recovery replay re-derives identical numbering.
    pub next_wal_seq: u64,
    /// The next block id to assign (dense, reservation-ordered; block
    /// ids order the same way as position ranges).
    next_block: u64,
    /// The low watermark: every block id below this has completed.
    head_block: u64,
    /// Completion flags for blocks `head_block..next_block`.
    inflight: VecDeque<bool>,
    /// The current routing tables; producers clone the [`Arc`] as their
    /// per-block snapshot, registration swaps in a rebuilt copy.
    pub router: Arc<Router>,
    /// The current shard queue set. Producers snapshot it together with
    /// their block reservation (one lock acquisition), so a block is
    /// always staged into the queue set that matches its position in
    /// block order; `Runtime::rescale` swaps in a new set under the
    /// same lock that reserves the rescale fence block.
    pub queues: Arc<[Arc<ShardQueue>]>,
    /// Every queue a watermark broadcast must reach: the current set,
    /// plus — mid-rescale — the retiring queues still draining their
    /// pre-fence backlog. Reset to the current set once the old workers
    /// detach.
    pub broadcast: Arc<[Arc<ShardQueue>]>,
}

impl SeqCore {
    /// Reserve `len` contiguous positions; returns `(block id, start)`.
    /// The block MUST later be completed on every path, or the reorder
    /// watermark wedges behind it.
    pub fn reserve(&mut self, len: u64) -> (u64, u64) {
        let id = self.next_block;
        self.next_block += 1;
        let start = self.next_pos;
        self.next_pos += len;
        self.inflight.push_back(false);
        (id, start)
    }

    /// Take the next WAL sequence number. Call only under the same lock
    /// acquisition as the operation's [`reserve`](Self::reserve) — and
    /// only on paths that then unconditionally log (or intentionally
    /// skip logging with no WAL attached): a consumed number that never
    /// reaches the log would wedge the group-commit drain.
    pub fn take_wal_seq(&mut self) -> u64 {
        let seq = self.next_wal_seq;
        self.next_wal_seq += 1;
        seq
    }

    /// Mark `id` complete. Returns the new low watermark when it
    /// advanced (the caller must then broadcast it to the shard reorder
    /// buffers), `None` when an earlier block is still in flight.
    pub fn complete(&mut self, id: u64) -> Option<u64> {
        self.inflight[(id - self.head_block) as usize] = true;
        if id != self.head_block {
            return None;
        }
        while self.inflight.front() == Some(&true) {
            self.inflight.pop_front();
            self.head_block += 1;
        }
        Some(self.head_block)
    }
}

/// Everything the producers, the control plane and the shard workers
/// share. `Runtime` owns one behind an [`Arc`]; [`IngestHandle`]s clone
/// the `Arc`.
pub(crate) struct IngestShared {
    pub seq: Mutex<SeqCore>,
    pub subs: SubscriptionRegistry,
    pub config: IngestConfig,
    pub hasher: FxBuildHasher,
    /// Tuples dropped by queues that a rescale has since retired, so
    /// drop totals stay monotone across queue-set swaps.
    pub retired_dropped: std::sync::atomic::AtomicU64,
    /// The runtime's metrics registry and event journal — shared here so
    /// producers, the control plane and the shard workers all record
    /// into the same instance.
    pub metrics: PipelineMetrics,
    /// The write-ahead log, attached once by `Runtime::open_durable` /
    /// `Runtime::recover` *after* any restore/replay traffic (so replay
    /// does not re-log itself). `None` on non-durable runtimes: the hot
    /// path pays one atomic load and skips everything else.
    pub wal: std::sync::OnceLock<Arc<crate::durability::Wal>>,
}

impl IngestShared {
    pub fn new(rc: &crate::config::RuntimeConfig) -> Self {
        let queues: Arc<[Arc<ShardQueue>]> = (0..rc.shards)
            .map(|_| Arc::new(ShardQueue::new(rc.ingest.queue_capacity)))
            .collect();
        IngestShared {
            seq: Mutex::new(SeqCore {
                next_pos: 0,
                next_wal_seq: 0,
                next_block: 0,
                head_block: 0,
                inflight: VecDeque::new(),
                router: Arc::new(Router::default()),
                queues: Arc::clone(&queues),
                broadcast: queues,
            }),
            subs: SubscriptionRegistry::default(),
            config: rc.ingest,
            hasher: FxBuildHasher::default(),
            retired_dropped: std::sync::atomic::AtomicU64::new(0),
            metrics: PipelineMetrics::new(rc.shards, rc.journal_capacity, rc.e2e_sample_every),
            wal: std::sync::OnceLock::new(),
        }
    }

    /// Log a stamped operation to the attached WAL, if any, recording
    /// append volume and fsync latency. On an append error the WAL has
    /// already poisoned itself (logging stops, serving continues); this
    /// journals the failure once. Never fails the operation: its block
    /// is already stamped and in flight to the shards.
    pub(crate) fn wal_append(
        &self,
        wal_seq: u64,
        position: u64,
        payload: Result<Vec<u8>, crate::durability::DurabilityError>,
    ) {
        let Some(wal) = self.wal.get() else { return };
        let appended = match payload {
            Ok(p) => wal.append(wal_seq, p),
            Err(e) => {
                wal.poison();
                Err(e)
            }
        };
        match appended {
            Ok(receipt) => {
                self.metrics.wal_bytes.add(receipt.bytes);
                self.metrics.wal_records.add(receipt.records);
                if let Some(nanos) = receipt.fsync_nanos {
                    self.metrics.wal_fsync.record(nanos);
                }
            }
            Err(_) => {
                self.metrics
                    .journal
                    .push(PipelineEvent::WalFailed { position });
            }
        }
    }

    /// An [`Arc`] snapshot of the current shard queue set (one short
    /// sequencer lock). Callers that need the set to agree with a block
    /// reservation must take both under the same lock acquisition
    /// instead.
    pub fn queues(&self) -> Arc<[Arc<ShardQueue>]> {
        Arc::clone(&self.seq.lock().expect("sequencer poisoned").queues)
    }

    /// Complete block `id` and, when the low watermark advanced,
    /// broadcast it so the shard reorder buffers release everything
    /// below it. Must run on every path after `SeqCore::reserve`.
    pub fn finish_block(&self, id: u64) {
        let advanced = {
            let mut seq = self.seq.lock().expect("sequencer poisoned");
            seq.complete(id)
                .map(|watermark| (watermark, Arc::clone(&seq.broadcast)))
        };
        if let Some((watermark, queues)) = advanced {
            for q in queues.iter() {
                q.release_up_to(watermark);
            }
        }
    }

    /// Stamp, route and stage a batch under `policy`. Returns the
    /// stamped position range and the dropped-tuple count.
    ///
    /// One short lock reserves the position block and snapshots the
    /// router; routing, partition-key hashing and cloning then run on
    /// the caller's thread, and each shard's slice is staged into that
    /// shard's reorder buffer. Under [`BackpressurePolicy::Block`] the
    /// producer parks for room only *after* completing the block, so
    /// backpressure can never wedge the reorder watermark.
    pub fn ingest(
        &self,
        batch: &[Tuple],
        policy: BackpressurePolicy,
    ) -> Result<IngestReceipt, IngestError> {
        if batch.is_empty() {
            let seq = self.seq.lock().expect("sequencer poisoned");
            return Ok(IngestReceipt {
                positions: seq.next_pos..seq.next_pos,
                dropped: 0,
            });
        }
        // The ingest timestamp anchors both the sequencer-reserve span
        // and (carried on the staged batch) the end-to-end latency.
        let ingest_at = Instant::now();
        // The queue set is snapshotted with the reservation: a block
        // reserved before a rescale fence stages into the retiring
        // queues (whose workers drain everything pre-fence before
        // detaching), a block reserved after stages into the new set.
        let (id, start, wal_seq, router, queues) = {
            let mut seq = self.seq.lock().expect("sequencer poisoned");
            let (id, start) = seq.reserve(batch.len() as u64);
            let wal_seq = seq.take_wal_seq();
            (
                id,
                start,
                wal_seq,
                Arc::clone(&seq.router),
                Arc::clone(&seq.queues),
            )
        };
        let n_shards = queues.len();
        self.metrics
            .seq_reserve
            .record_duration(ingest_at.elapsed());
        // Log the stamped batch before staging: the WAL sees the full
        // reserved block (under `DropNewest`, replay may keep tuples
        // the original run shed — the differential tests use `Block`).
        if self.wal.get().is_some() {
            let payload = crate::durability::encode_batch(wal_seq, start, batch);
            self.wal_append(wal_seq, start, payload);
        }
        // Outside the lock: route, hash and clone on this producer's
        // thread, striping the per-tuple work across producers. The
        // outer staging vector is thread-local scratch (each staged
        // slice is handed over by `mem::take`, so only the outer
        // allocation amortizes — same profile as the pre-striping
        // sequencer, now without any shared lock around it).
        thread_local! {
            static STAGING: std::cell::RefCell<Vec<Vec<(u64, Tuple)>>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let (dropped, closed, mut touched) = STAGING.with(|cell| {
            let mut staging = cell.borrow_mut();
            if staging.len() < n_shards {
                staging.resize_with(n_shards, Vec::new);
            }
            // Defensive against a poisoned previous call (e.g. a panic
            // mid-staging): normally every slot is already empty.
            for slot in staging.iter_mut() {
                slot.clear();
            }
            for (k, t) in batch.iter().enumerate() {
                let i = start + k as u64;
                let mut mask = router.shard_mask(&self.hasher, t, n_shards);
                while mask != 0 {
                    let s = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    staging[s].push((i, t.clone()));
                }
            }
            let mut dropped = 0u64;
            let mut closed = false;
            let mut touched: u64 = 0;
            for s in 0..n_shards {
                if staging[s].is_empty() {
                    continue;
                }
                let tuples = std::mem::take(&mut staging[s]);
                match queues[s].stage_block(id, tuples, ingest_at, policy) {
                    Ok(d) => {
                        if d > 0 {
                            self.metrics.drops.add(d);
                            self.metrics.journal.push(PipelineEvent::TuplesDropped {
                                shard: s,
                                position: start,
                                count: d,
                            });
                        }
                        dropped += d;
                        touched |= 1 << s;
                    }
                    Err(Closed) => closed = true,
                }
            }
            (dropped, closed, touched)
        });
        // Complete before any backpressure wait (and on the closed
        // path): a parked or failing producer must not hold the
        // watermark back.
        self.finish_block(id);
        if closed {
            return Err(IngestError::RuntimeClosed);
        }
        if policy == BackpressurePolicy::Block {
            while touched != 0 {
                let s = touched.trailing_zeros() as usize;
                touched &= touched - 1;
                let park_at = Instant::now();
                let parked = queues[s]
                    .wait_for_room()
                    .map_err(|Closed| IngestError::RuntimeClosed)?;
                if parked {
                    let park = park_at.elapsed();
                    self.metrics.producer_park.record_duration(park);
                    self.metrics.parks.inc();
                    self.metrics.journal.push(PipelineEvent::ProducerParked {
                        shard: s,
                        position: start,
                        park_nanos: u64::try_from(park.as_nanos()).unwrap_or(u64::MAX),
                    });
                }
            }
        }
        Ok(IngestReceipt {
            positions: start..start + batch.len() as u64,
            dropped,
        })
    }

    /// Fence across all shards: returns once every message ordered
    /// before the call — tuple blocks (reserved or staged),
    /// registrations — has been fully processed and its match events
    /// published.
    ///
    /// The barrier reserves a zero-width block, so it is released to
    /// each worker only after the watermark passes every block reserved
    /// before it: reserved-but-unstaged blocks are fenced too.
    pub fn barrier(&self) -> Result<(), IngestError> {
        let (reply, done) = std::sync::mpsc::channel();
        let (id, queues) = {
            let mut seq = self.seq.lock().expect("sequencer poisoned");
            (seq.reserve(0).0, Arc::clone(&seq.queues))
        };
        let mut closed = false;
        for q in queues.iter() {
            if q.stage_control(
                id,
                ShardMsg::Barrier {
                    reply: reply.clone(),
                },
            )
            .is_err()
            {
                closed = true;
            }
        }
        self.finish_block(id);
        drop(reply);
        if closed {
            return Err(IngestError::RuntimeClosed);
        }
        for _ in 0..queues.len() {
            done.recv().map_err(|_| IngestError::RuntimeClosed)?;
        }
        Ok(())
    }

    /// Close the pipeline: every shard queue is closed (workers drain
    /// what was released and exit; producers fail fast) and every
    /// subscriber channel is closed and woken — a shard worker parked on
    /// a full `Block` subscription observes the close instead of parking
    /// forever, which is what lets `Runtime::drop` join its workers
    /// under a live, undrained subscriber.
    pub fn close(&self) {
        // Close the *broadcast* set: mid-rescale it is a superset of the
        // current queues, so retiring workers are released too.
        let (position, queues) = {
            let seq = self.seq.lock().expect("sequencer poisoned");
            (seq.next_pos, Arc::clone(&seq.broadcast))
        };
        self.metrics
            .journal
            .push(PipelineEvent::Shutdown { position });
        for q in queues.iter() {
            q.close();
        }
        self.subs.close_all();
    }
}

/// A cloneable producer handle onto the runtime's ingestion pipeline.
///
/// Any number of threads may hold clones and feed the stream
/// concurrently; the sequencer serializes them only to reserve position
/// blocks — routing and staging stripe across the producers' threads.
/// The handle outlives the runtime safely: once the runtime shuts down,
/// pushes return [`IngestError::RuntimeClosed`].
#[derive(Clone)]
pub struct IngestHandle {
    pub(crate) shared: Arc<IngestShared>,
}

impl IngestHandle {
    /// Push one tuple; returns its stamped global position.
    pub fn push(&self, t: &Tuple) -> Result<u64, IngestError> {
        let receipt = self.push_batch(std::slice::from_ref(t))?;
        Ok(receipt.positions.start)
    }

    /// Push a batch in stream order under the runtime's configured
    /// [`BackpressurePolicy`].
    pub fn push_batch(&self, batch: &[Tuple]) -> Result<IngestReceipt, IngestError> {
        self.shared.ingest(batch, self.shared.config.policy)
    }

    /// Occupancy counters of every shard queue, including tuples
    /// dropped by [`BackpressurePolicy::DropNewest`].
    pub fn queue_stats(&self) -> Vec<QueueStats> {
        self.shared.queues().iter().map(|q| q.stats()).collect()
    }

    /// Total tuples dropped across all shard queues so far.
    ///
    /// Monotone across rescales: drops accumulated by queues a rescale
    /// retired are folded into the total when their workers detach.
    pub fn total_dropped(&self) -> u64 {
        let retired = self
            .shared
            .retired_dropped
            .load(std::sync::atomic::Ordering::Relaxed);
        retired
            + self
                .shared
                .queues()
                .iter()
                .map(|q| q.stats().dropped)
                .sum::<u64>()
    }
}

/// Shard a tuple belongs to under key partitioning on position `pos`:
/// the hash of its partition value, or a deterministic home shard (0)
/// when the tuple lacks that attribute. Sequencer and workers must agree
/// on this function. Attribute-less tuples cannot join under a
/// partition-sound automaton (their key extraction is undefined), so a
/// fixed home shard preserves outputs — their matches are self-contained.
pub(crate) fn key_shard(hasher: &FxBuildHasher, t: &Tuple, pos: usize, n_shards: usize) -> usize {
    match t.values().get(pos) {
        Some(v) => (hasher.hash_one(v) % n_shards as u64) as usize,
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_tracker_watermark_advances_in_completion_order() {
        let empty: Arc<[Arc<ShardQueue>]> = Arc::from([]);
        let mut seq = SeqCore {
            next_pos: 0,
            next_wal_seq: 0,
            next_block: 0,
            head_block: 0,
            inflight: VecDeque::new(),
            router: Arc::new(Router::default()),
            queues: Arc::clone(&empty),
            broadcast: empty,
        };
        let (a, sa) = seq.reserve(3);
        let (b, sb) = seq.reserve(0); // zero-width control block
        let (c, sc) = seq.reserve(5);
        assert_eq!((sa, sb, sc), (0, 3, 3));
        assert_eq!(seq.next_pos, 8);
        // Completing out of order holds the watermark at the oldest
        // incomplete block...
        assert_eq!(seq.complete(c), None);
        assert_eq!(seq.complete(b), None);
        // ...and completing the head releases everything at once.
        assert_eq!(seq.complete(a), Some(c + 1));
        let (d, sd) = seq.reserve(1);
        assert_eq!(sd, 8);
        assert_eq!(seq.complete(d), Some(d + 1));
    }
}

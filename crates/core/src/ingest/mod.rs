//! Asynchronous ingestion: sequenced, backpressured, subscription-fed.
//!
//! The synchronous [`Runtime::push_batch`](crate::runtime::Runtime::push_batch)
//! couples three things that a production firehose wants decoupled:
//! stamping stream positions, evaluating tuples on the shards, and
//! delivering completed matches to consumers. This module splits them
//! into a pipeline:
//!
//! ```text
//!  producers (any thread, cloned IngestHandle)
//!      │  push / push_batch
//!      ▼
//!  ┌─────────────┐   one lock: stamp global positions, route,
//!  │  sequencer  │   stage per shard  (bit-identical to sync path)
//!  └─────────────┘
//!      │ per-shard FIFO, bounded, BackpressurePolicy
//!      ▼
//!  ┌─────────────┐  ┌─────────────┐
//!  │ shard 0     │  │ shard k     │   workers drain queues, evaluate,
//!  │ ShardQueue  │… │ ShardQueue  │   publish MatchEvents
//!  └─────────────┘  └─────────────┘
//!      │                 │
//!      ▼                 ▼
//!  ┌───────────────────────────────┐
//!  │     subscription registry     │  per-consumer bounded channels
//!  └───────────────────────────────┘
//!      │ Subscription (per QueryId or All)
//!      ▼
//!  consumers — may lag or drop without stalling ingestion
//! ```
//!
//! # Position-sequencing soundness
//!
//! Why are the asynchronously delivered outputs identical (as a
//! multiset) to the synchronous path? Three invariants carry the
//! argument:
//!
//! 1. **Global, gap-free stamping.** The sequencer assigns each
//!    ingested tuple the next global position *and stages it onto the
//!    per-shard FIFO queues under the same lock*. So every shard
//!    receives exactly the subsequence routed to it, in strictly
//!    increasing position order — the precondition of
//!    [`StreamingEvaluator::push_at`](crate::evaluator::StreamingEvaluator::push_at).
//! 2. **Window expiry is position-functional.** The
//!    [`WindowClock`](crate::window::WindowClock) computes expiry
//!    bounds from the stamped position (count windows) or from the
//!    tuple's own timestamp attribute (time windows) — never from
//!    arrival time, queue depth, or which shard observes the tuple. A
//!    shard evaluator that sees a *gappy* subsequence therefore
//!    computes the same bound the dense evaluator would, and queueing
//!    delay cannot shift window semantics.
//! 3. **Evaluation is deterministic per shard.** Each worker processes
//!    its queue serially, so the set of matches completed at position
//!    `i` is a function of the routed subsequence up to `i` alone.
//!
//! Hence, for every query, the multiset of
//! [`MatchEvent`](crate::runtime::MatchEvent)s published to
//! the registry equals the synchronous `push_batch` output on the same
//! stream — shard count, queue capacity and consumer speed only
//! reorder *delivery*, never membership. The guarantee assumes no
//! tuple was dropped: [`BackpressurePolicy::Block`] never drops, while
//! [`BackpressurePolicy::DropNewest`] trades completeness for a
//! never-blocking producer and counts every tuple it sheds (per shard
//! queue, in [`QueueStats::dropped`]).
//!
//! `tests/ingest_async.rs` checks the equivalence differentially across
//! shard counts, partition modes and both window kinds, and checks that
//! a deliberately stalled subscriber never blocks producers under
//! `DropNewest`.
//!
//! # Example
//!
//! ```
//! use cer_core::ingest::SubscriptionFilter;
//! use cer_core::runtime::{QuerySpec, Runtime};
//! use cer_core::window::WindowPolicy;
//! use cer_automata::pcea::paper_p0;
//! use cer_common::gen::sigma0_prefix;
//! use cer_common::Schema;
//!
//! let (_, r, s, t) = Schema::sigma0();
//! let mut rt = Runtime::new(2);
//! let q = rt
//!     .register(QuerySpec::new("p0", paper_p0(r, s, t), WindowPolicy::Count(100)))
//!     .unwrap();
//! let sub = rt.subscribe(SubscriptionFilter::Query(q));
//! let handle = rt.ingest_handle();
//! let producer = std::thread::spawn(move || {
//!     for tuple in sigma0_prefix(r, s, t) {
//!         handle.push(&tuple).unwrap();
//!     }
//! });
//! producer.join().unwrap();
//! rt.drain(); // fence: everything ingested is evaluated and delivered
//! let events = sub.drain();
//! assert_eq!(events.len(), 2);
//! assert!(events.iter().all(|e| e.query == q && e.position == 5));
//! ```

mod queue;
mod subscribe;

pub use queue::QueueStats;
pub use subscribe::{Subscription, SubscriptionFilter};

pub(crate) use queue::{Closed, ShardMsg, ShardQueue};
pub(crate) use subscribe::SubscriptionRegistry;

use crate::runtime::Partition;
use cer_common::hash::{FxBuildHasher, FxHashMap};
use cer_common::{RelationId, Tuple};
use std::fmt;
use std::hash::BuildHasher;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// What a producer does when a shard queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Park the producer until the shard worker drains room. Lossless;
    /// a saturated shard slows the firehose down to its pace.
    #[default]
    Block,
    /// Drop the newest tuples that do not fit, counting them
    /// ([`QueueStats::dropped`]). The producer never blocks.
    DropNewest,
}

/// Construction-time knobs of the ingestion pipeline
/// (`Runtime::with_config`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestConfig {
    /// Per-shard queue capacity, in tuples. The bound is soft under
    /// [`BackpressurePolicy::Block`]: a batch is admitted whole once any
    /// room exists.
    pub queue_capacity: usize,
    /// What [`IngestHandle`] producers do when a shard queue is full.
    /// The synchronous `push_batch` path always blocks (it promises
    /// every match back), whatever this says.
    pub policy: BackpressurePolicy,
    /// Target evaluation batch size, in tuples: each shard-worker wakeup
    /// opportunistically drains consecutive queued tuple batches into
    /// one slice until it reaches this many tuples (it may overshoot by
    /// at most one producer batch), then evaluates the slice through the
    /// vectorized batch path. Larger values amortize per-wakeup
    /// bookkeeping under backlog; the worker never *waits* to fill a
    /// batch, so latency under light load is unaffected. The batch
    /// sizes actually seen are reported in
    /// [`QueueStats::drained_batches`] / [`QueueStats::drained_tuples`] /
    /// [`QueueStats::max_drain_batch`].
    pub max_batch: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            queue_capacity: 1 << 16,
            policy: BackpressurePolicy::Block,
            max_batch: 4096,
        }
    }
}

/// Why an ingest operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The runtime was dropped or shut down; its shard workers are gone.
    RuntimeClosed,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::RuntimeClosed => write!(f, "the runtime has shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

/// What one `push_batch` on an [`IngestHandle`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The global positions stamped onto the batch, in order.
    pub positions: Range<u64>,
    /// Tuples dropped across shard queues
    /// ([`BackpressurePolicy::DropNewest`] only). A tuple routed to
    /// several shards counts once per queue that shed it.
    pub dropped: u64,
}

/// Routing metadata for one registered query, kept so tables can be
/// rebuilt when a query is deregistered.
pub(crate) struct QueryMeta {
    pub alive: bool,
    pub partition: Partition,
    pub listens: Option<Vec<RelationId>>,
    /// Shards hosting the query (one for `ByQuery`, all for `ByKey`).
    pub homes: Vec<usize>,
}

/// The relation → shard routing tables, derivable from the live
/// [`QueryMeta`]s at any time.
#[derive(Default)]
pub(crate) struct Router {
    pub metas: Vec<QueryMeta>,
    /// Shards hosting a pinned query that listens to this relation.
    fixed_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Partition-attribute positions of key-partitioned queries
    /// listening to this relation.
    key_routes: FxHashMap<RelationId, Vec<usize>>,
    /// Shards hosting pinned queries with unconfined predicates.
    wildcard_fixed: Vec<usize>,
    /// Partition positions of key-partitioned unconfined queries.
    wildcard_keys: Vec<usize>,
}

impl Router {
    /// Recompute every table from the live query metadata.
    pub fn rebuild(&mut self) {
        self.fixed_routes.clear();
        self.key_routes.clear();
        self.wildcard_fixed.clear();
        self.wildcard_keys.clear();
        for meta in self.metas.iter().filter(|m| m.alive) {
            match meta.partition {
                Partition::ByQuery => {
                    let shard = meta.homes[0];
                    match &meta.listens {
                        Some(rels) => {
                            for &rel in rels {
                                let route = self.fixed_routes.entry(rel).or_default();
                                if !route.contains(&shard) {
                                    route.push(shard);
                                }
                            }
                        }
                        None => {
                            if !self.wildcard_fixed.contains(&shard) {
                                self.wildcard_fixed.push(shard);
                            }
                        }
                    }
                }
                Partition::ByKey { pos } => match &meta.listens {
                    Some(rels) => {
                        for &rel in rels {
                            let route = self.key_routes.entry(rel).or_default();
                            if !route.contains(&pos) {
                                route.push(pos);
                            }
                        }
                    }
                    None => {
                        if !self.wildcard_keys.contains(&pos) {
                            self.wildcard_keys.push(pos);
                        }
                    }
                },
            }
        }
    }

    /// Bitmask of shards the tuple must reach.
    fn shard_mask(&self, hasher: &FxBuildHasher, t: &Tuple, n_shards: usize) -> u64 {
        let rel = t.relation();
        let mut mask: u64 = 0;
        if let Some(route) = self.fixed_routes.get(&rel) {
            for &s in route {
                mask |= 1 << s;
            }
        }
        for &s in &self.wildcard_fixed {
            mask |= 1 << s;
        }
        for &pos in self
            .key_routes
            .get(&rel)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .chain(&self.wildcard_keys)
        {
            mask |= 1 << key_shard(hasher, t, pos, n_shards);
        }
        mask
    }
}

/// The sequencer's mutable state: one lock serializes position stamping
/// and per-shard staging, which is exactly what keeps shard inputs in
/// increasing position order (see the module docs).
pub(crate) struct SeqState {
    pub next_pos: u64,
    pub router: Router,
    /// Per-shard staging buffers, reused across batches.
    staging: Vec<Vec<(u64, Tuple)>>,
}

/// Everything the producers, the control plane and the shard workers
/// share. `Runtime` owns one behind an [`Arc`]; [`IngestHandle`]s clone
/// the `Arc`.
pub(crate) struct IngestShared {
    pub seq: Mutex<SeqState>,
    pub queues: Vec<Arc<ShardQueue>>,
    pub subs: SubscriptionRegistry,
    pub config: IngestConfig,
    pub hasher: FxBuildHasher,
}

impl IngestShared {
    pub fn new(n_shards: usize, config: IngestConfig) -> Self {
        IngestShared {
            seq: Mutex::new(SeqState {
                next_pos: 0,
                router: Router::default(),
                staging: vec![Vec::new(); n_shards],
            }),
            queues: (0..n_shards)
                .map(|_| Arc::new(ShardQueue::new(config.queue_capacity)))
                .collect(),
            subs: SubscriptionRegistry::default(),
            config,
            hasher: FxBuildHasher::default(),
        }
    }

    /// Stamp, route and enqueue a batch under `policy`. Returns the
    /// stamped position range and the dropped-tuple count.
    pub fn ingest(
        &self,
        batch: &[Tuple],
        policy: BackpressurePolicy,
    ) -> Result<IngestReceipt, IngestError> {
        let n_shards = self.queues.len();
        let mut seq = self.seq.lock().expect("sequencer poisoned");
        let start = seq.next_pos;
        for t in batch {
            let i = seq.next_pos;
            seq.next_pos += 1;
            let mut mask = seq.router.shard_mask(&self.hasher, t, n_shards);
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                seq.staging[s].push((i, t.clone()));
            }
        }
        let end = seq.next_pos;
        let mut dropped = 0u64;
        for s in 0..n_shards {
            if seq.staging[s].is_empty() {
                continue;
            }
            let tuples = std::mem::take(&mut seq.staging[s]);
            // Still under the sequencer lock: staging order == queue
            // order, so per-shard positions stay strictly increasing.
            dropped += self.queues[s]
                .push_tuples(tuples, policy)
                .map_err(|Closed| IngestError::RuntimeClosed)?;
        }
        Ok(IngestReceipt {
            positions: start..end,
            dropped,
        })
    }

    /// FIFO fence across all shards: returns once every message
    /// enqueued before the call — tuples, registrations — has been fully
    /// processed and its match events published.
    pub fn barrier(&self) -> Result<(), IngestError> {
        let (reply, done) = std::sync::mpsc::channel();
        {
            // Take the sequencer lock so the fence orders after any
            // in-flight producer's staging.
            let _seq = self.seq.lock().expect("sequencer poisoned");
            for q in &self.queues {
                q.push_control(ShardMsg::Barrier {
                    reply: reply.clone(),
                })
                .map_err(|Closed| IngestError::RuntimeClosed)?;
            }
        }
        drop(reply);
        for _ in 0..self.queues.len() {
            done.recv().map_err(|_| IngestError::RuntimeClosed)?;
        }
        Ok(())
    }

    /// Close every shard queue; workers drain what is queued and exit.
    pub fn close(&self) {
        for q in &self.queues {
            q.close();
        }
    }
}

/// A cloneable producer handle onto the runtime's ingestion pipeline.
///
/// Any number of threads may hold clones and feed the stream
/// concurrently; the sequencer serializes them to stamp global
/// positions. The handle outlives the runtime safely: once the runtime
/// shuts down, pushes return [`IngestError::RuntimeClosed`].
#[derive(Clone)]
pub struct IngestHandle {
    pub(crate) shared: Arc<IngestShared>,
}

impl IngestHandle {
    /// Push one tuple; returns its stamped global position.
    pub fn push(&self, t: &Tuple) -> Result<u64, IngestError> {
        let receipt = self.push_batch(std::slice::from_ref(t))?;
        Ok(receipt.positions.start)
    }

    /// Push a batch in stream order under the runtime's configured
    /// [`BackpressurePolicy`].
    pub fn push_batch(&self, batch: &[Tuple]) -> Result<IngestReceipt, IngestError> {
        self.shared.ingest(batch, self.shared.config.policy)
    }

    /// Occupancy counters of every shard queue, including tuples
    /// dropped by [`BackpressurePolicy::DropNewest`].
    pub fn queue_stats(&self) -> Vec<QueueStats> {
        self.shared.queues.iter().map(|q| q.stats()).collect()
    }

    /// Total tuples dropped across all shard queues so far.
    pub fn total_dropped(&self) -> u64 {
        self.shared.queues.iter().map(|q| q.stats().dropped).sum()
    }
}

/// Shard a tuple belongs to under key partitioning on position `pos`:
/// the hash of its partition value, or a deterministic home shard (0)
/// when the tuple lacks that attribute. Sequencer and workers must agree
/// on this function. Attribute-less tuples cannot join under a
/// partition-sound automaton (their key extraction is undefined), so a
/// fixed home shard preserves outputs — their matches are self-contained.
pub(crate) fn key_shard(hasher: &FxBuildHasher, t: &Tuple, pos: usize, n_shards: usize) -> usize {
    match t.values().get(pos) {
        Some(v) => (hasher.hash_one(v) % n_shards as u64) as usize,
        None => 0,
    }
}

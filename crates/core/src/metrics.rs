//! Pipeline observability: the per-runtime metrics registry and the
//! structured event journal.
//!
//! Every [`Runtime`](crate::runtime::Runtime) owns one
//! `PipelineMetrics` registry (shared with its producers and shard workers
//! through the ingest pipeline's `Arc`). The span structure mirrors the
//! pipeline stages documented in [`crate::ingest`]:
//!
//! ```text
//!  producer ──────────────────────────────────────────────► consumer
//!   │ seq_reserve   reorder_hold   queue_wait   shard_eval │
//!   │ producer_park              (prefilter + eval tail)   │
//!   │                                         delivery     │
//!   └───────────────────── e2e ──────────────────────────▲─┘
//! ```
//!
//! * `seq_reserve` — the sequencer lock acquisition reserving a
//!   position block ([`SeqCore::reserve`](crate::ingest));
//! * `producer_park` — how long producers park for backpressure under
//!   [`BackpressurePolicy::Block`](crate::ingest::BackpressurePolicy);
//! * reorder hold and drain-batch wait live on each shard queue
//!   ([`crate::ingest`]'s reorder stage);
//! * `shard_eval` / `prefilter` / `eval_tail` — per-shard batch
//!   evaluation, with the shared-prefilter phase split from the
//!   fire/index/enumerate tail;
//! * delivery lives on the subscription registry;
//! * `e2e` — true ingest→match-delivery latency, measured from an
//!   `Instant` captured at block reservation and carried on the stamped
//!   batch. Sampled every Nth delivered match
//!   ([`RuntimeConfig::e2e_sample_every`](crate::config::RuntimeConfig::e2e_sample_every));
//!   the default is every match.
//!
//! Recording cost follows the `cer-obs` model: one relaxed atomic add
//! per histogram sample; the journal takes a short mutex on *events*
//! (parks, drops, churn), which are orders of magnitude rarer than
//! tuples.

use crate::runtime::QueryId;
use cer_obs::{Counter, Histogram, Journal};
use std::sync::atomic::{AtomicU64, Ordering};

/// How many [`PipelineEvent`]s the journal retains before overwriting
/// the oldest (overwrites are counted, never silent).
pub const EVENT_JOURNAL_CAPACITY: usize = 1024;

/// A structured, position-stamped pipeline event. Drained via
/// [`Runtime::events`](crate::runtime::Runtime::events); each entry
/// additionally carries the journal's own dense sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineEvent {
    /// A producer parked for backpressure on a shard queue
    /// ([`BackpressurePolicy::Block`](crate::ingest::BackpressurePolicy)),
    /// recorded once it unparked, with the park duration.
    ProducerParked {
        /// The shard whose queue was full.
        shard: usize,
        /// Start of the position block the producer had just staged.
        position: u64,
        /// How long it parked, in nanoseconds.
        park_nanos: u64,
    },
    /// A shard queue shed tuples under
    /// [`BackpressurePolicy::DropNewest`](crate::ingest::BackpressurePolicy).
    TuplesDropped {
        /// The shard that dropped.
        shard: usize,
        /// Start of the position block the drop occurred in.
        position: u64,
        /// Tuples shed.
        count: u64,
    },
    /// A time-window clock clamped out-of-order timestamps (the stream
    /// violated the non-decreasing-timestamp contract; see
    /// [`crate::window`]).
    TsRegressions {
        /// The shard that observed the regression.
        shard: usize,
        /// The affected query.
        query: QueryId,
        /// Position of the last tuple in the evaluated batch.
        position: u64,
        /// New clamps observed in that batch.
        count: u64,
    },
    /// A query was registered.
    QueryRegistered {
        /// The new query's id.
        query: QueryId,
        /// Stream position of the registration fence.
        position: u64,
    },
    /// A query was deregistered.
    QueryDeregistered {
        /// The removed query's id.
        query: QueryId,
        /// Stream position of the deregistration fence.
        position: u64,
    },
    /// A query's automaton was hot-swapped in place
    /// ([`Runtime::replace`](crate::runtime::Runtime::replace)).
    QueryReplaced {
        /// The swapped query's id.
        query: QueryId,
        /// Stream position of the swap fence.
        position: u64,
    },
    /// An epoch-consistent snapshot was captured.
    SnapshotTaken {
        /// The snapshot's epoch position.
        position: u64,
    },
    /// A runtime was rebuilt from a snapshot.
    Restored {
        /// The resumed stream position.
        position: u64,
        /// The restored runtime's shard count.
        shards: usize,
    },
    /// The runtime was live-resharded in place
    /// ([`Runtime::rescale`](crate::runtime::Runtime::rescale)).
    Rescale {
        /// Shard count before the rescale.
        from: usize,
        /// Shard count after the rescale.
        to: usize,
        /// Stream position of the rescale fence: every tuple stamped
        /// below it was evaluated by the old worker set, everything at
        /// or above by the new one.
        fence_pos: u64,
        /// Fence-to-resume wall time, in nanoseconds.
        nanos: u64,
    },
    /// The autoscale controller decided to change the shard count (the
    /// matching [`Rescale`](Self::Rescale) event follows once the move
    /// completes). Hold decisions are not journaled.
    AutoscaleDecision {
        /// Shard count at decision time.
        from: usize,
        /// The target shard count.
        to: usize,
        /// The stream position when the decision was made.
        position: u64,
    },
    /// The pipeline shut down (queues closed, workers draining out).
    Shutdown {
        /// The last stamped position at shutdown.
        position: u64,
    },
    /// WAL recovery truncated a torn tail (a record cut mid-write by
    /// the crash) off a segment.
    WalTornTail {
        /// The recovered stream position (after replay).
        position: u64,
        /// Bytes dropped from the segment.
        bytes_dropped: u64,
    },
    /// The active WAL segment was rolled at a checkpoint or rescale
    /// fence.
    WalRolled {
        /// The fence's stream position.
        position: u64,
    },
    /// A WAL append hit an I/O error: logging is disabled from here on
    /// (fail-open), the runtime keeps serving from memory.
    WalFailed {
        /// Start of the position block whose append failed.
        position: u64,
    },
    /// A checkpoint was written and committed to the manifest; WAL
    /// segments it covers were truncated.
    CheckpointWritten {
        /// The checkpoint's epoch cut position.
        position: u64,
        /// The checkpoint's epoch number.
        epoch: u64,
        /// Bytes written to the checkpoint file.
        bytes: u64,
        /// Whether it was a full (chain-base) checkpoint.
        full: bool,
    },
    /// The runtime was rebuilt from disk
    /// ([`Runtime::recover`](crate::runtime::Runtime::recover)): latest
    /// checkpoint restored, WAL suffix replayed.
    Recovered {
        /// The recovered stream position (stamping resumes here).
        position: u64,
        /// WAL records replayed on top of the checkpoint.
        replayed: u64,
    },
}

impl PipelineEvent {
    /// The stream position the event is stamped with.
    pub fn position(&self) -> u64 {
        match self {
            PipelineEvent::ProducerParked { position, .. }
            | PipelineEvent::TuplesDropped { position, .. }
            | PipelineEvent::TsRegressions { position, .. }
            | PipelineEvent::QueryRegistered { position, .. }
            | PipelineEvent::QueryDeregistered { position, .. }
            | PipelineEvent::QueryReplaced { position, .. }
            | PipelineEvent::SnapshotTaken { position }
            | PipelineEvent::Restored { position, .. }
            | PipelineEvent::AutoscaleDecision { position, .. }
            | PipelineEvent::Shutdown { position }
            | PipelineEvent::WalTornTail { position, .. }
            | PipelineEvent::WalRolled { position }
            | PipelineEvent::WalFailed { position }
            | PipelineEvent::CheckpointWritten { position, .. }
            | PipelineEvent::Recovered { position, .. } => *position,
            PipelineEvent::Rescale { fence_pos, .. } => *fence_pos,
        }
    }
}

/// Per-shard evaluation-stage histograms, recorded by that shard's
/// worker thread.
#[derive(Default)]
pub(crate) struct ShardStageMetrics {
    /// Whole drained-batch evaluation time (selection + every hosted
    /// query).
    pub eval: Histogram,
    /// Shared-prefilter phase across all evaluations on this shard.
    pub prefilter: Histogram,
    /// The fire/index/enumerate tail, split from the prefilter.
    pub eval_tail: Histogram,
}

/// The per-runtime metrics registry. Lives inside the ingest pipeline's
/// shared state so producers, shard workers and the control plane all
/// record into the same instance.
pub(crate) struct PipelineMetrics {
    /// Sequencer position-block reservation latency.
    pub seq_reserve: Histogram,
    /// Producer park duration under `Block` backpressure (recorded only
    /// when the producer actually parked).
    pub producer_park: Histogram,
    /// Park episodes (histogram count equals this; kept as a cheap
    /// counter for export).
    pub parks: Counter,
    /// Tuples shed under `DropNewest`, summed across shards.
    pub drops: Counter,
    /// End-to-end ingest→match-delivery latency (sampled).
    pub e2e: Histogram,
    /// Per-shard capture + encode stall of snapshot fences. Untouched
    /// by `Runtime::rescale` — the rescale path never serializes, and
    /// the zero-wire test pins that by asserting this stays empty.
    pub snapshot_serialize: Histogram,
    /// Wall-clock duration of `Runtime::restore` calls that built this
    /// runtime (at most one sample, on the restored runtime).
    pub restore: Histogram,
    /// Fence-to-resume duration of `Runtime::rescale` calls.
    pub rescale: Histogram,
    /// WAL fsync latency (one sample per group-commit sync).
    pub wal_fsync: Histogram,
    /// Bytes appended to the WAL.
    pub wal_bytes: Counter,
    /// Records appended to the WAL.
    pub wal_records: Counter,
    /// Size of the last checkpoint relative to the uncompressed state
    /// it captured, in basis points (10_000 = no delta savings; 0 = no
    /// checkpoint yet). A gauge, not a counter.
    pub ckpt_delta_ratio_bp: AtomicU64,
    /// Per-shard evaluation-stage histograms. Behind a mutex (locked
    /// only at construction, rescale and metrics export — workers hold
    /// their own `Arc` and record lock-free) because a rescale swaps in
    /// a fresh set sized for the new worker count.
    pub shards: std::sync::Mutex<Vec<std::sync::Arc<ShardStageMetrics>>>,
    /// The bounded event journal.
    pub journal: Journal<PipelineEvent>,
    e2e_ticks: AtomicU64,
    e2e_sample_every: AtomicU64,
}

impl PipelineMetrics {
    pub fn new(n_shards: usize, journal_capacity: usize, e2e_sample_every: u64) -> Self {
        PipelineMetrics {
            seq_reserve: Histogram::new(),
            producer_park: Histogram::new(),
            parks: Counter::new(),
            drops: Counter::new(),
            e2e: Histogram::new(),
            snapshot_serialize: Histogram::new(),
            restore: Histogram::new(),
            rescale: Histogram::new(),
            wal_fsync: Histogram::new(),
            wal_bytes: Counter::new(),
            wal_records: Counter::new(),
            ckpt_delta_ratio_bp: AtomicU64::new(0),
            shards: std::sync::Mutex::new(
                (0..n_shards)
                    .map(|_| std::sync::Arc::new(ShardStageMetrics::default()))
                    .collect(),
            ),
            journal: Journal::new(journal_capacity.max(1)),
            e2e_ticks: AtomicU64::new(0),
            e2e_sample_every: AtomicU64::new(e2e_sample_every.max(1)),
        }
    }

    /// Whether this delivered match should contribute an e2e sample:
    /// every `sample_every`-th match does. One relaxed `fetch_add`; the
    /// histograms stay unbiased under uniform sampling because every
    /// percentile is a ratio of bucket counts.
    #[inline]
    pub fn e2e_should_sample(&self) -> bool {
        let every = self.e2e_sample_every.load(Ordering::Relaxed).max(1);
        self.e2e_ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2e_sampling_period_is_respected() {
        let m = PipelineMetrics::new(1, EVENT_JOURNAL_CAPACITY, 4);
        let sampled = (0..16).filter(|_| m.e2e_should_sample()).count();
        assert_eq!(sampled, 4);
        // 0 is clamped to 1: every match samples.
        let m = PipelineMetrics::new(1, EVENT_JOURNAL_CAPACITY, 0);
        let sampled = (0..5).filter(|_| m.e2e_should_sample()).count();
        assert_eq!(sampled, 5);
    }

    #[test]
    fn event_positions_are_extracted_uniformly() {
        let ev = PipelineEvent::SnapshotTaken { position: 42 };
        assert_eq!(ev.position(), 42);
        let ev = PipelineEvent::ProducerParked {
            shard: 1,
            position: 7,
            park_nanos: 100,
        };
        assert_eq!(ev.position(), 7);
    }
}

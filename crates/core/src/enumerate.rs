//! Output-linear-delay enumeration over `DS_w` (Theorem 5.2).
//!
//! Enumerates `⟦n⟧^w_i` — the valuations represented by a node whose
//! span fits the sliding window — without preprocessing. The walk
//! interleaves two moves:
//!
//! * *union descent*: visit the union tree below a node, pruning any
//!   subtree with `max-start < i − w` in `O(1)` (sound by the heap
//!   condition (‡), complete because expiry is hereditary);
//! * *product expansion*: for a product node, emit the cross product of
//!   one choice per product child, each choice drawn from the child's own
//!   windowed bag. The running valuation is built in place and
//!   backtracked, so the work between two emitted outputs is proportional
//!   to the size of the next output (plus `O(1)` pruned branches) —
//!   output-linear delay.
//!
//! When the structure is *simple* (guaranteed for unambiguous PCEA), no
//! valuation is emitted twice.

use crate::ds::{EnumStructure, NodeId};
use cer_automata::valuation::Valuation;

/// Enumerate `⟦root⟧^w_i`, invoking `f` once per valuation.
///
/// `i` is the current stream position and `w` the window size; a
/// valuation qualifies iff `i − min(ν) ≤ w`. The `&Valuation` passed to
/// `f` is a reusable buffer — clone it to keep it.
pub fn for_each_valuation<F: FnMut(&Valuation)>(
    ds: &EnumStructure,
    root: NodeId,
    i: u64,
    w: u64,
    num_labels: usize,
    f: F,
) {
    for_each_valuation_from(ds, root, i.saturating_sub(w), num_labels, f);
}

/// Enumerate all valuations with `min(ν) ≥ lo` — the window-generic
/// variant used by time-based windows, where the expiry bound is not
/// `i − w` but any monotonically non-decreasing position.
pub fn for_each_valuation_from<F: FnMut(&Valuation)>(
    ds: &EnumStructure,
    root: NodeId,
    lo: u64,
    num_labels: usize,
    f: F,
) {
    let mut e = Enumerator {
        ds,
        lo,
        f,
        val: Valuation::empty(num_labels),
    };
    e.one_of(root, &[]);
}

/// Materialize `⟦root⟧^w_i` as a vector.
pub fn collect_valuations(
    ds: &EnumStructure,
    root: NodeId,
    i: u64,
    w: u64,
    num_labels: usize,
) -> Vec<Valuation> {
    let mut out = Vec::new();
    for_each_valuation(ds, root, i, w, num_labels, |v| out.push(v.clone()));
    out
}

/// Count `|⟦root⟧^w_i|` without materializing valuations.
pub fn count_valuations(ds: &EnumStructure, root: NodeId, i: u64, w: u64) -> usize {
    let mut n = 0usize;
    for_each_valuation(ds, root, i, w, 0, |_| n += 1);
    n
}

struct Enumerator<'a, F> {
    ds: &'a EnumStructure,
    lo: u64,
    f: F,
    val: Valuation,
}

impl<F: FnMut(&Valuation)> Enumerator<'_, F> {
    /// Emit every way of choosing one valuation from each node of
    /// `pending` on top of the current partial valuation.
    fn product_over(&mut self, pending: &[NodeId]) {
        match pending.split_first() {
            None => (self.f)(&self.val),
            Some((&first, rest)) => self.one_of(first, rest),
        }
    }

    /// Choose a valuation from `⟦node⟧^w_i` (walking its union tree and
    /// product alternatives), then continue with `rest`.
    fn one_of(&mut self, node: NodeId, rest: &[NodeId]) {
        if node.is_bottom() || self.ds.max_start(node) < self.lo {
            return; // (‡): the whole subtree is out of the window.
        }
        let n = self.ds.node(node);
        // Product alternative: ν_{L,i} ⊕ one choice per product child.
        if self.val.num_labels() == 0 {
            // Counting mode: skip valuation bookkeeping.
            self.product_over_counting(n, rest);
        } else {
            self.val.insert(n.labels, n.pos);
            if n.prod.is_empty() {
                self.product_over(rest);
            } else {
                let mut extended: Vec<NodeId> = Vec::with_capacity(n.prod.len() + rest.len());
                extended.extend_from_slice(&n.prod);
                extended.extend_from_slice(rest);
                self.product_over(&extended);
            }
            self.val.remove(n.labels, n.pos);
        }
        // Union alternatives.
        self.one_of(n.uleft, rest);
        self.one_of(n.uright, rest);
    }

    fn product_over_counting(&mut self, n: &crate::ds::Node, rest: &[NodeId]) {
        if n.prod.is_empty() {
            self.product_over(rest);
        } else {
            let mut extended: Vec<NodeId> = Vec::with_capacity(n.prod.len() + rest.len());
            extended.extend_from_slice(&n.prod);
            extended.extend_from_slice(rest);
            self.product_over(&extended);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ds::BOTTOM;
    use cer_automata::valuation::{Label, LabelSet};

    fn l(i: u32) -> LabelSet {
        LabelSet::singleton(Label(i))
    }

    #[test]
    fn single_node_single_valuation() {
        let mut ds = EnumStructure::new();
        let n = ds.extend(l(0), 5, &[]);
        let vs = collect_valuations(&ds, n, 5, 10, 1);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].get(Label(0)), &[5]);
    }

    #[test]
    fn product_cross_multiplies() {
        // Two alternatives at label 0 (positions 1 and 2) × one at label
        // 1 (position 3), gathered at position 4 under label 2.
        let mut ds = EnumStructure::new();
        let a1 = ds.extend(l(0), 1, &[]);
        let a2 = ds.extend(l(0), 2, &[]);
        let a = ds.union(a1, a2, 0);
        let b = ds.extend(l(1), 3, &[]);
        let root = ds.extend(l(2), 4, &[a, b]);
        let vs = collect_valuations(&ds, root, 4, 100, 3);
        assert_eq!(vs.len(), 2);
        let mut mins: Vec<u64> = vs.iter().map(|v| v.min_pos().unwrap()).collect();
        mins.sort_unstable();
        assert_eq!(mins, vec![1, 2]);
        for v in &vs {
            assert_eq!(v.get(Label(1)), &[3]);
            assert_eq!(v.get(Label(2)), &[4]);
            assert_eq!(v.weight(), 3);
        }
    }

    #[test]
    fn window_prunes_stale_alternatives() {
        let mut ds = EnumStructure::new();
        let a1 = ds.extend(l(0), 1, &[]);
        let a2 = ds.extend(l(0), 90, &[]);
        let a = ds.union(a1, a2, 0);
        let b = ds.extend(l(1), 95, &[]);
        let root = ds.extend(l(2), 100, &[a, b]);
        // Window 20: only the position-90 alternative survives.
        let vs = collect_valuations(&ds, root, 100, 20, 3);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].min_pos(), Some(90));
        // Window 5: even position 90 is out; nothing qualifies.
        assert!(collect_valuations(&ds, root, 100, 5, 3).is_empty());
        // Window large: both.
        assert_eq!(collect_valuations(&ds, root, 100, 100, 3).len(), 2);
    }

    #[test]
    fn whole_node_out_of_window_yields_nothing() {
        let mut ds = EnumStructure::new();
        let n = ds.extend(l(0), 5, &[]);
        assert!(collect_valuations(&ds, n, 100, 10, 1).is_empty());
        assert_eq!(count_valuations(&ds, n, 100, 10), 0);
    }

    #[test]
    fn union_chain_enumerates_all() {
        let mut ds = EnumStructure::new();
        let mut root = BOTTOM;
        for i in 0..20u64 {
            let n = ds.extend(l(0), i, &[]);
            root = ds.union(root, n, 0);
        }
        let vs = collect_valuations(&ds, root, 19, 100, 1);
        assert_eq!(vs.len(), 20);
        let mut seen: Vec<u64> = vs.iter().map(|v| v.get(Label(0))[0]).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        // Window 4: positions 15..=19.
        assert_eq!(count_valuations(&ds, root, 19, 4), 5);
    }

    #[test]
    fn nested_products_three_levels() {
        // ((1 × 2) at 3) × 4 at 5: a deep product tree.
        let mut ds = EnumStructure::new();
        let a = ds.extend(l(0), 1, &[]);
        let b = ds.extend(l(1), 2, &[]);
        let mid = ds.extend(l(2), 3, &[a, b]);
        let c = ds.extend(l(3), 4, &[]);
        let root = ds.extend(l(4), 5, &[mid, c]);
        let vs = collect_valuations(&ds, root, 5, 100, 5);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].weight(), 5);
    }

    #[test]
    fn count_matches_collect() {
        let mut ds = EnumStructure::new();
        let mut alt = BOTTOM;
        for i in 0..7u64 {
            let n = ds.extend(l(0), i, &[]);
            alt = ds.union(alt, n, 0);
        }
        let b = ds.extend(l(1), 8, &[]);
        let root = ds.extend(l(2), 9, &[alt, b]);
        for w in [0u64, 3, 8, 9, 100] {
            assert_eq!(
                count_valuations(&ds, root, 9, w),
                collect_valuations(&ds, root, 9, w, 3).len(),
                "window {w}"
            );
        }
    }

    #[test]
    fn bottom_enumerates_nothing() {
        let ds = EnumStructure::new();
        assert_eq!(count_valuations(&ds, BOTTOM, 0, 10), 0);
    }
}

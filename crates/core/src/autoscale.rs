//! Closed-loop elasticity: a hysteresis controller that watches the
//! load signals the observability layer already produces and drives
//! [`Runtime::rescale`](crate::runtime::Runtime::rescale) up and down.
//!
//! The controller is deliberately **pure**: [`Controller::observe`]
//! maps a [`LoadSignals`] sample to a [`ScaleDecision`] using only its
//! own streak counters, so the policy is unit-testable without a
//! runtime, a clock, or threads. The impure rim —
//! [`Runtime::autoscale_tick`](crate::runtime::Runtime::autoscale_tick)
//! — samples [`RuntimeStats`], feeds the
//! controller, journals every non-hold decision as
//! [`PipelineEvent::AutoscaleDecision`](crate::metrics::PipelineEvent)
//! and executes the rescale. Serving deployments poll it from a
//! background thread (`cer-serve` exposes enable/status over the
//! protocol); embedded users call it on whatever cadence they like.
//!
//! ## Signals and hysteresis
//!
//! | signal | meaning | drives |
//! |---|---|---|
//! | `max_occupancy` | hottest shard queue depth / capacity | up and down |
//! | `parks_delta` | producer park episodes since the last tick | up |
//! | `max_drain_batch` | largest coalesced batch a worker drained | (exposed for operators) |
//! | `pinned_queries` | live `ByQuery` queries | caps useful scale-up |
//!
//! A tick is *hot* when the hottest queue is above
//! [`AutoscalePolicy::scale_up_occupancy`] or any producer parked;
//! *cold* when every queue is below
//! [`AutoscalePolicy::scale_down_occupancy`] and nobody parked. Only
//! [`AutoscalePolicy::up_after`] consecutive hot ticks (resp.
//! [`AutoscalePolicy::down_after`] cold ones) trigger a decision, and
//! every decision is followed by [`AutoscalePolicy::cooldown_ticks`]
//! held ticks so the post-rescale queues drain before being judged.
//! Scale-up doubles the shard count, scale-down halves it, both
//! clamped to `min_shards..=max_shards` — multiplicative steps reach
//! any target in `O(log)` decisions while the hysteresis keeps the
//! loop from flapping between adjacent counts.

use crate::runtime::RuntimeStats;

/// The knobs of the hysteresis policy. Construct with
/// [`AutoscalePolicy::default`] and override fields as needed; the
/// defaults suit a queue-bound streaming workload polled about once a
/// second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscalePolicy {
    /// Never scale below this many shards.
    pub min_shards: usize,
    /// Never scale above this many shards (clamped to 64, the
    /// runtime-wide bound).
    pub max_shards: usize,
    /// A tick is hot when some shard queue's occupancy
    /// (depth / capacity) reaches this fraction.
    pub scale_up_occupancy: f64,
    /// A tick is cold when every shard queue's occupancy is at or
    /// below this fraction (and no producer parked).
    pub scale_down_occupancy: f64,
    /// A tick is also hot when at least this many producer park
    /// episodes happened since the previous tick.
    pub park_rate_up: u64,
    /// Consecutive hot ticks before scaling up.
    pub up_after: u32,
    /// Consecutive cold ticks before scaling down (deliberately
    /// larger than `up_after`: adding capacity is urgent, removing it
    /// is not).
    pub down_after: u32,
    /// Ticks held (no decision, streaks reset) after each rescale so
    /// the new layout's queues reach steady state before being judged.
    pub cooldown_ticks: u32,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        AutoscalePolicy {
            min_shards: 1,
            max_shards: 8,
            scale_up_occupancy: 0.75,
            scale_down_occupancy: 0.10,
            park_rate_up: 1,
            up_after: 3,
            down_after: 8,
            cooldown_ticks: 5,
        }
    }
}

/// One tick's worth of load observations, distilled from
/// [`RuntimeStats`] (see the [module docs](self) for the signal
/// table). Plain data so policies can be tested against synthetic
/// load shapes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadSignals {
    /// Current worker shard count.
    pub shards: usize,
    /// Hottest shard queue: depth / capacity at sample time.
    pub max_occupancy: f64,
    /// Mean shard queue occupancy at sample time.
    pub mean_occupancy: f64,
    /// Cumulative producer park episodes (the controller diffs
    /// successive samples itself).
    pub parks_total: u64,
    /// Largest coalesced batch any worker drained since start.
    pub max_drain_batch: usize,
    /// Live pinned ([`Partition::ByQuery`](crate::runtime::Partition))
    /// queries: scaling above this only helps keyed queries.
    pub pinned_queries: usize,
}

impl LoadSignals {
    /// Distill a [`RuntimeStats`] sample. `shards` and
    /// `queue_capacity` come from the runtime because `RuntimeStats`
    /// carries depths, not capacities.
    pub fn from_stats(shards: usize, queue_capacity: usize, stats: &RuntimeStats) -> Self {
        let cap = queue_capacity.max(1) as f64;
        let occ: Vec<f64> = stats
            .shard_queues
            .iter()
            .map(|q| q.depth as f64 / cap)
            .collect();
        let max_occupancy = occ.iter().copied().fold(0.0, f64::max);
        let mean_occupancy = if occ.is_empty() {
            0.0
        } else {
            occ.iter().sum::<f64>() / occ.len() as f64
        };
        LoadSignals {
            shards,
            max_occupancy,
            mean_occupancy,
            parks_total: 0, // filled by the caller (a pipeline counter, not a QueueStats field)
            max_drain_batch: stats
                .shard_queues
                .iter()
                .map(|q| q.max_drain_batch)
                .max()
                .unwrap_or(0),
            pinned_queries: stats.per_query.len(),
        }
    }
}

/// What the controller wants done after a tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current shard count.
    Hold,
    /// Rescale to `to` shards.
    Scale {
        /// The target shard count.
        to: usize,
    },
}

/// The hysteresis controller: feed it one [`LoadSignals`] sample per
/// tick and act on the returned [`ScaleDecision`]. See the [module
/// docs](self) for the policy semantics.
#[derive(Clone, Debug)]
pub struct Controller {
    policy: AutoscalePolicy,
    hot_ticks: u32,
    cold_ticks: u32,
    cooldown: u32,
    last_parks: Option<u64>,
}

impl Controller {
    /// A controller with the given policy and cold streak counters.
    pub fn new(policy: AutoscalePolicy) -> Self {
        Controller {
            policy,
            hot_ticks: 0,
            cold_ticks: 0,
            cooldown: 0,
            last_parks: None,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// `(hot, cold, cooldown)` streak counters — surfaced so a status
    /// endpoint can show how close the controller is to a decision.
    pub fn streaks(&self) -> (u32, u32, u32) {
        (self.hot_ticks, self.cold_ticks, self.cooldown)
    }

    /// One tick: classify the sample, advance the streaks, and decide.
    /// Pure with respect to everything but the controller's own
    /// counters.
    pub fn observe(&mut self, s: &LoadSignals) -> ScaleDecision {
        // Park rate is a delta between successive cumulative samples;
        // the first sample establishes the baseline.
        let parks_delta = match self.last_parks.replace(s.parks_total) {
            Some(prev) => s.parks_total.saturating_sub(prev),
            None => 0,
        };
        if self.cooldown > 0 {
            self.cooldown -= 1;
            self.hot_ticks = 0;
            self.cold_ticks = 0;
            return ScaleDecision::Hold;
        }
        let hot = s.max_occupancy >= self.policy.scale_up_occupancy
            || (self.policy.park_rate_up > 0 && parks_delta >= self.policy.park_rate_up);
        let cold = !hot && s.max_occupancy <= self.policy.scale_down_occupancy && parks_delta == 0;
        if hot {
            self.hot_ticks += 1;
            self.cold_ticks = 0;
        } else if cold {
            self.cold_ticks += 1;
            self.hot_ticks = 0;
        } else {
            self.hot_ticks = 0;
            self.cold_ticks = 0;
        }
        let max = self.policy.max_shards.clamp(1, 64);
        let min = self.policy.min_shards.clamp(1, max);
        if self.hot_ticks >= self.policy.up_after && s.shards < max {
            self.hot_ticks = 0;
            self.cooldown = self.policy.cooldown_ticks;
            return ScaleDecision::Scale {
                to: (s.shards * 2).clamp(min, max),
            };
        }
        if self.cold_ticks >= self.policy.down_after && s.shards > min {
            self.cold_ticks = 0;
            self.cooldown = self.policy.cooldown_ticks;
            return ScaleDecision::Scale {
                to: (s.shards / 2).clamp(min, max),
            };
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(shards: usize, occ: f64, parks: u64) -> LoadSignals {
        LoadSignals {
            shards,
            max_occupancy: occ,
            mean_occupancy: occ,
            parks_total: parks,
            max_drain_batch: 0,
            pinned_queries: 0,
        }
    }

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy {
            up_after: 3,
            down_after: 4,
            cooldown_ticks: 2,
            ..AutoscalePolicy::default()
        }
    }

    #[test]
    fn scale_up_needs_a_hot_streak() {
        let mut c = Controller::new(policy());
        // Two hot ticks, one lukewarm tick: streak resets, no decision.
        assert_eq!(c.observe(&signals(2, 0.9, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(2, 0.9, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(2, 0.4, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(2, 0.9, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(2, 0.9, 0)), ScaleDecision::Hold);
        // Third consecutive hot tick: double.
        assert_eq!(
            c.observe(&signals(2, 0.9, 0)),
            ScaleDecision::Scale { to: 4 }
        );
    }

    #[test]
    fn park_episodes_count_as_hot() {
        let mut c = Controller::new(policy());
        // Parks are cumulative; each tick with a positive delta is hot
        // even at low occupancy.
        assert_eq!(c.observe(&signals(1, 0.1, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(1, 0.1, 3)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(1, 0.1, 6)), ScaleDecision::Hold);
        assert_eq!(
            c.observe(&signals(1, 0.1, 9)),
            ScaleDecision::Scale { to: 2 }
        );
    }

    #[test]
    fn scale_down_needs_a_longer_cold_streak_and_respects_min() {
        let mut c = Controller::new(policy());
        for _ in 0..3 {
            assert_eq!(c.observe(&signals(4, 0.0, 0)), ScaleDecision::Hold);
        }
        assert_eq!(
            c.observe(&signals(4, 0.0, 0)),
            ScaleDecision::Scale { to: 2 }
        );
        // At min_shards a cold streak decides nothing.
        let mut c = Controller::new(policy());
        for _ in 0..16 {
            assert_eq!(c.observe(&signals(1, 0.0, 0)), ScaleDecision::Hold);
        }
    }

    #[test]
    fn cooldown_suppresses_and_resets() {
        let mut c = Controller::new(policy());
        for _ in 0..2 {
            c.observe(&signals(2, 0.9, 0));
        }
        assert_eq!(
            c.observe(&signals(2, 0.9, 0)),
            ScaleDecision::Scale { to: 4 }
        );
        // cooldown_ticks = 2: two held ticks even under full heat,
        // then the streak starts over from zero.
        assert_eq!(c.observe(&signals(4, 1.0, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(4, 1.0, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(4, 1.0, 0)), ScaleDecision::Hold);
        assert_eq!(c.observe(&signals(4, 1.0, 0)), ScaleDecision::Hold);
        assert_eq!(
            c.observe(&signals(4, 1.0, 0)),
            ScaleDecision::Scale { to: 8 }
        );
    }

    #[test]
    fn max_shards_caps_the_doubling() {
        let mut c = Controller::new(AutoscalePolicy {
            max_shards: 6,
            ..policy()
        });
        for _ in 0..2 {
            c.observe(&signals(4, 0.9, 0));
        }
        assert_eq!(
            c.observe(&signals(4, 0.9, 0)),
            ScaleDecision::Scale { to: 6 }
        );
        // Already at max: hot streaks hold.
        let mut c = Controller::new(AutoscalePolicy {
            max_shards: 4,
            ..policy()
        });
        for _ in 0..10 {
            assert_eq!(c.observe(&signals(4, 1.0, 0)), ScaleDecision::Hold);
        }
    }

    #[test]
    fn load_signals_distill_queue_stats() {
        use crate::runtime::RuntimeStats;
        let stats = RuntimeStats {
            shard_queues: vec![
                crate::ingest::QueueStats {
                    depth: 75,
                    high_water: 90,
                    max_drain_batch: 40,
                    ..Default::default()
                },
                crate::ingest::QueueStats {
                    depth: 25,
                    high_water: 50,
                    max_drain_batch: 64,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let s = LoadSignals::from_stats(2, 100, &stats);
        assert_eq!(s.shards, 2);
        assert!((s.max_occupancy - 0.75).abs() < 1e-9);
        assert!((s.mean_occupancy - 0.50).abs() < 1e-9);
        assert_eq!(s.max_drain_batch, 64);
    }
}

//! One construction-time configuration value for the whole runtime.
//!
//! The runtime used to scatter its knobs across the constructor
//! (`shards`), a second constructor (`with_config` taking an
//! [`IngestConfig`]), and post-construction setters
//! (`set_e2e_sample_every`) — a surface a remote client cannot drive,
//! because a server listener has exactly one place to accept
//! configuration: before it builds the runtime. [`RuntimeConfig`]
//! gathers every knob into one builder-style value that
//! [`Runtime::new`](crate::runtime::Runtime::new),
//! [`Runtime::restore_with`](crate::runtime::Runtime::restore_with) and
//! the serving layer's listener all take.
//!
//! `Runtime::new(4)` keeps compiling: a bare shard count converts into
//! a config via `From<usize>`, with every other field at its default.

use crate::durability::DurabilityConfig;
use crate::ingest::IngestConfig;
use crate::metrics::EVENT_JOURNAL_CAPACITY;
use crate::runtime::Partition;

/// Everything a [`Runtime`](crate::runtime::Runtime) needs to know at
/// construction, in one value.
///
/// ```
/// use cer_core::{BackpressurePolicy, IngestConfig, Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(
///     RuntimeConfig::new(4)
///         .with_ingest(IngestConfig {
///             queue_capacity: 1 << 12,
///             policy: BackpressurePolicy::DropNewest,
///             max_batch: 1024,
///         })
///         .with_e2e_sample_every(8),
/// );
/// assert_eq!(rt.num_shards(), 4);
/// rt.shutdown();
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker shard count; clamped to `1..=64` at construction.
    pub shards: usize,
    /// The placement assumed for queries submitted without an explicit
    /// partition (the serving layer's submit-query op, which has no
    /// partition field unless the client sets one).
    pub default_partition: Partition,
    /// The ingestion pipeline's knobs (queue capacity, backpressure
    /// policy, evaluation batch size).
    pub ingest: IngestConfig,
    /// Sample every Nth delivered match into the end-to-end latency
    /// histogram (clamped to ≥ 1; 1 = every match).
    pub e2e_sample_every: u64,
    /// How many pipeline events the bounded journal retains before
    /// overwriting the oldest (clamped to ≥ 1; overwrites are counted).
    pub journal_capacity: usize,
    /// Durability tuning (fsync policy, WAL segment size, checkpoint
    /// chain length). Inert unless the runtime is opened with a data
    /// directory ([`Runtime::open_durable`] /
    /// [`Runtime::recover`](crate::runtime::Runtime::recover)).
    ///
    /// [`Runtime::open_durable`]: crate::runtime::Runtime::open_durable
    pub durability: DurabilityConfig,
}

impl RuntimeConfig {
    /// A config with `shards` worker threads and every other field at
    /// its default.
    pub fn new(shards: usize) -> Self {
        RuntimeConfig {
            shards,
            ..Self::default()
        }
    }

    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Override the partition assumed for queries submitted without one.
    pub fn with_default_partition(mut self, partition: Partition) -> Self {
        self.default_partition = partition;
        self
    }

    /// Override the ingestion knobs.
    pub fn with_ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = ingest;
        self
    }

    /// Override the e2e latency sampling period.
    pub fn with_e2e_sample_every(mut self, every: u64) -> Self {
        self.e2e_sample_every = every;
        self
    }

    /// Override the event-journal capacity.
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal_capacity = capacity;
        self
    }

    /// Override the durability tuning.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = durability;
        self
    }

    /// The config with out-of-range fields clamped into their valid
    /// ranges — what `Runtime` actually constructs from.
    pub(crate) fn validated(mut self) -> Self {
        self.shards = self.shards.clamp(1, 64);
        self.e2e_sample_every = self.e2e_sample_every.max(1);
        self.journal_capacity = self.journal_capacity.max(1);
        self.durability = self.durability.validated();
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            shards: 1,
            default_partition: Partition::ByQuery,
            ingest: IngestConfig::default(),
            e2e_sample_every: 1,
            journal_capacity: EVENT_JOURNAL_CAPACITY,
            durability: DurabilityConfig::default(),
        }
    }
}

impl From<usize> for RuntimeConfig {
    fn from(shards: usize) -> Self {
        RuntimeConfig::new(shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_from_usize() {
        let cfg = RuntimeConfig::new(8)
            .with_e2e_sample_every(4)
            .with_journal_capacity(64)
            .with_default_partition(Partition::ByKey { pos: 0 });
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.e2e_sample_every, 4);
        assert_eq!(cfg.journal_capacity, 64);
        assert_eq!(cfg.default_partition, Partition::ByKey { pos: 0 });
        assert_eq!(RuntimeConfig::from(3).shards, 3);
        assert_eq!(RuntimeConfig::from(3).ingest, IngestConfig::default());
    }

    #[test]
    fn validation_clamps_out_of_range_fields() {
        use crate::durability::FsyncPolicy;
        let cfg = RuntimeConfig::new(0)
            .with_e2e_sample_every(0)
            .with_journal_capacity(0)
            .with_durability(DurabilityConfig {
                fsync: FsyncPolicy::EveryN(0),
                segment_bytes: 0,
                full_checkpoint_every: 0,
            })
            .validated();
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.e2e_sample_every, 1);
        assert_eq!(cfg.journal_capacity, 1);
        assert_eq!(cfg.durability.fsync, FsyncPolicy::EveryN(1));
        assert_eq!(cfg.durability.segment_bytes, 4 << 10);
        assert_eq!(cfg.durability.full_checkpoint_every, 1);
        assert_eq!(RuntimeConfig::new(1000).validated().shards, 64);
    }
}

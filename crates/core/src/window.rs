//! Ingest/window stage: turning an arriving tuple into an expiry bound.
//!
//! Algorithm 1 is window-agnostic — the `DS_w` machinery only needs a
//! monotone lower bound `lo` such that positions `< lo` are expired at
//! the current position. This module isolates that computation behind
//! [`WindowClock`] so every evaluator (the PCEA engine, the baselines,
//! and the multi-query [`Runtime`](crate::runtime::Runtime) shards)
//! shares one implementation of the paper's count window and the
//! timestamp extension.
//!
//! Under the asynchronous pipeline ([`crate::ingest`]), the position
//! fed to [`WindowClock::observe`] is the one stamped by the ingest
//! *sequencer*, not a per-shard counter: expiry advances on the global
//! stream position (count windows) or on the tuple's own timestamp
//! attribute (time windows), never on arrival time or queue depth. A
//! shard that observes a gappy subsequence therefore computes the same
//! bound the dense evaluator would — this is invariant 2 of the
//! position-sequencing soundness argument in the
//! [`ingest`](crate::ingest) module docs. The striped sequencer adds a
//! reordering clause to that argument: concurrent producers stage
//! position blocks out of order and a per-shard reorder stage releases
//! them in position order, so a tuple may sit buffered for a while —
//! but since the bound is a function of the *stamped* position (or the
//! tuple's own timestamp), evaluating it later computes exactly the
//! bound it would have computed at staging time. Buffering delay is
//! invisible to window semantics.
//!
//! # Hazard: out-of-order timestamps under `ByKey` sharding
//!
//! Time windows assume each stream's timestamp attribute is
//! non-decreasing. [`WindowClock::observe`] *clamps* a violating
//! timestamp up to the latest one seen **by that clock** — and under
//! [`Partition::ByKey`](crate::runtime::Partition) sharding each shard
//! replica owns its own clock and sees only its key slice. The same
//! contract-violating stream can therefore clamp *differently* on
//! different shard counts (a regression hidden from shard 0's clock may
//! be visible to the single dense clock, and vice versa), silently
//! producing **shard-count-dependent outputs**. The clamp counts every
//! such regression ([`WindowClock::ts_regressions`], surfaced as
//! `EngineStats::ts_regressions` and aggregated across shards in
//! [`RuntimeStats`](crate::runtime::RuntimeStats::ts_regressions)):
//! a non-zero counter means the input violated the contract and
//! divergence is possible — alert on it rather than trusting the
//! multiset-equivalence guarantee for that stream.

use std::collections::VecDeque;

use cer_common::Tuple;

/// How the sliding window expires old positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowPolicy {
    /// The paper's count window: positions older than `i − w` expire.
    Count(u64),
    /// A time window: the tuple attribute at `ts_pos` is a
    /// non-decreasing integer timestamp, and positions whose timestamp
    /// falls below `now − duration` expire. The `DS_w` machinery is
    /// window-agnostic (it only needs a monotone expiry bound), so
    /// Theorem 5.1's guarantees carry over with `w` read as the maximum
    /// number of in-window positions.
    Time {
        /// Window length in timestamp units.
        duration: i64,
        /// Tuple position holding the integer timestamp.
        ts_pos: usize,
    },
}

/// The stateful ingest stage for one evaluator: feeds positions in
/// increasing order, returns the expiry bound for each.
///
/// Positions may have gaps (a sharded evaluator only sees the tuples
/// routed to it); the bound stays correct because it is only ever used
/// to filter nodes built from positions this evaluator *did* see.
#[derive(Clone, Debug)]
pub struct WindowClock {
    policy: WindowPolicy,
    /// Time windows: in-window `(position, timestamp)` ring.
    ring: VecDeque<(u64, i64)>,
    last_ts: i64,
    /// Out-of-order timestamps this clock clamped (see the module-level
    /// hazard note).
    ts_regressions: u64,
}

impl WindowClock {
    /// A clock for the given policy.
    pub fn new(policy: WindowPolicy) -> Self {
        WindowClock {
            policy,
            ring: VecDeque::new(),
            last_ts: i64::MIN,
            ts_regressions: 0,
        }
    }

    /// How many out-of-order timestamps this clock has clamped up to its
    /// own `last_ts`. Always 0 for count windows and for streams
    /// honouring the non-decreasing-timestamp contract; non-zero flags
    /// the shard-count-dependence hazard described in the module docs.
    pub fn ts_regressions(&self) -> u64 {
        self.ts_regressions
    }

    /// The policy driving this clock.
    pub fn policy(&self) -> &WindowPolicy {
        &self.policy
    }

    /// For count windows, the window size `w` — the expiry bound is the
    /// pure function `lo = i − w` of the position, which lets batch
    /// evaluation hoist the policy dispatch out of its inner loop. Time
    /// windows return `None`: their bound depends on each tuple's
    /// timestamp, so they must go through [`observe`](Self::observe)
    /// tuple by tuple.
    pub fn count_window(&self) -> Option<u64> {
        match self.policy {
            WindowPolicy::Count(w) => Some(w),
            WindowPolicy::Time { .. } => None,
        }
    }

    /// Observe the tuple occupying position `i`; returns the expiry
    /// bound `lo`: every stored position `< lo` is out of the window at
    /// `i`.
    ///
    /// Panics for time windows when the tuple lacks an integer timestamp
    /// at the configured position. Out-of-order timestamps are clamped
    /// up to the latest seen by *this* clock, and every clamp is counted
    /// in [`ts_regressions`](Self::ts_regressions) — under key-partitioned
    /// sharding the clamp makes outputs shard-count-dependent, so the
    /// count is the operator's detection signal (module docs).
    pub fn observe(&mut self, i: u64, t: &Tuple) -> u64 {
        match &self.policy {
            WindowPolicy::Count(w) => i.saturating_sub(*w),
            WindowPolicy::Time { duration, ts_pos } => {
                let raw = t
                    .values()
                    .get(*ts_pos)
                    .and_then(cer_common::Value::as_int)
                    .unwrap_or_else(|| {
                        panic!("time window: tuple lacks an integer timestamp at {ts_pos}")
                    });
                if raw < self.last_ts {
                    self.ts_regressions += 1;
                }
                let ts = raw.max(self.last_ts);
                self.last_ts = ts;
                self.ring.push_back((i, ts));
                while self
                    .ring
                    .front()
                    .is_some_and(|&(_, old)| old < ts.saturating_sub(*duration))
                {
                    self.ring.pop_front();
                }
                self.ring.front().map_or(i, |&(p, _)| p)
            }
        }
    }

    /// A reasonable default garbage-collection cadence for the policy.
    pub fn default_gc_every(&self) -> u64 {
        match self.policy {
            WindowPolicy::Count(w) => w.max(1024),
            WindowPolicy::Time { .. } => 1024,
        }
    }

    /// Checkpoint encoding: the policy plus the clock's mutable state
    /// (the in-window ring, the clamp floor and the regression counter).
    pub(crate) fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        use cer_common::wire::Wire;
        self.policy.encode(w)?;
        w.put_len(self.ring.len());
        for &(pos, ts) in &self.ring {
            w.put_u64(pos);
            w.put_i64(ts);
        }
        w.put_i64(self.last_ts);
        w.put_u64(self.ts_regressions);
        Ok(())
    }

    /// Decode a clock encoded by [`encode`](Self::encode).
    pub(crate) fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
    ) -> Result<Self, cer_common::wire::WireError> {
        let policy = <WindowPolicy as cer_common::wire::Wire>::decode(r)?;
        let n = r.get_len()?;
        let mut ring = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let pos = r.get_u64()?;
            let ts = r.get_i64()?;
            if let Some(&(p, t)) = ring.back() {
                if pos <= p || ts < t {
                    return Err(cer_common::wire::WireError::Corrupt(
                        "window ring not monotone",
                    ));
                }
            }
            ring.push_back((pos, ts));
        }
        let last_ts = r.get_i64()?;
        let ts_regressions = r.get_u64()?;
        Ok(WindowClock {
            policy,
            ring,
            last_ts,
            ts_regressions,
        })
    }

    /// Merge another replica's clock into this one (restore-time shard
    /// merge, [`crate::checkpoint`]): the rings interleave by position,
    /// the clamp floor is the max of the floors, and regressions sum.
    /// For streams honouring the non-decreasing-timestamp contract the
    /// result is exactly the clock a dense evaluator would hold; for
    /// violating streams replica clocks may have clamped differently,
    /// which is the same shard-count-dependence hazard the module docs
    /// describe (and `ts_regressions` flags).
    pub(crate) fn absorb(&mut self, other: WindowClock) {
        let mut merged = VecDeque::with_capacity(self.ring.len() + other.ring.len());
        let (mut a, mut b) = (
            std::mem::take(&mut self.ring).into_iter().peekable(),
            other.ring.into_iter().peekable(),
        );
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (pos, mut ts) = if take_a {
                a.next().unwrap()
            } else {
                b.next().unwrap()
            };
            // Equal positions cannot happen across replicas (positions
            // are globally unique); keep both defensively. Re-apply the
            // monotone clamp across the merged order: replica clocks
            // clamped independently, so on a contract-violating stream
            // the interleaved ring could regress (shard A holding
            // (0, 100), shard B (1, 5)) — exactly what a dense clock
            // would have clamped, and what `decode` rejects.
            if let Some(&(_, prev_ts)) = merged.back() {
                ts = ts.max(prev_ts);
            }
            merged.push_back((pos, ts));
        }
        self.ring = merged;
        self.last_ts = self.last_ts.max(other.last_ts);
        self.ts_regressions += other.ts_regressions;
        if let WindowPolicy::Time { duration, .. } = self.policy {
            let horizon = self.last_ts.saturating_sub(duration);
            while self.ring.front().is_some_and(|&(_, old)| old < horizon) {
                self.ring.pop_front();
            }
        }
    }

    /// Reset the regression counter (restore-time replica clones must
    /// not multiply-report the merged count across shards).
    pub(crate) fn reset_regressions(&mut self) {
        self.ts_regressions = 0;
    }

    /// Carry this clock's state over to a replacement policy of the
    /// same kind (`Runtime::replace` hot-swap). Count-window clocks are
    /// stateless, so any count size migrates exactly; time-window
    /// clocks keep their ring and clamp floor, so a *widened* duration
    /// converges to the dense bound within one old window (entries
    /// already pruned under the old duration cannot be resurrected) and
    /// a narrowed one re-prunes at the next observation. Returns `None`
    /// when the kinds differ (or the timestamp attribute moved), which
    /// `replace` surfaces as an incompatibility.
    pub(crate) fn migrate(self, new_policy: WindowPolicy) -> Option<Self> {
        match (&self.policy, &new_policy) {
            (WindowPolicy::Count(_), WindowPolicy::Count(_)) => Some(WindowClock {
                policy: new_policy,
                ..self
            }),
            (
                WindowPolicy::Time { ts_pos: old_ts, .. },
                WindowPolicy::Time { ts_pos: new_ts, .. },
            ) if old_ts == new_ts => Some(WindowClock {
                policy: new_policy,
                ..self
            }),
            _ => None,
        }
    }
}

impl cer_common::wire::Wire for WindowPolicy {
    fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        match self {
            WindowPolicy::Count(size) => {
                w.put_u8(0);
                w.put_u64(*size);
            }
            WindowPolicy::Time { duration, ts_pos } => {
                w.put_u8(1);
                w.put_i64(*duration);
                w.put_len(*ts_pos);
            }
        }
        Ok(())
    }
    fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
    ) -> Result<Self, cer_common::wire::WireError> {
        match r.get_u8()? {
            0 => Ok(WindowPolicy::Count(r.get_u64()?)),
            1 => Ok(WindowPolicy::Time {
                duration: r.get_i64()?,
                ts_pos: <usize as cer_common::wire::Wire>::decode(r)?,
            }),
            _ => Err(cer_common::wire::WireError::Corrupt("window policy tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    #[test]
    fn count_window_bound() {
        let (_, r, _, _) = Schema::sigma0();
        let mut clock = WindowClock::new(WindowPolicy::Count(3));
        let t = tup(r, [1i64, 2]);
        assert_eq!(clock.observe(0, &t), 0);
        assert_eq!(clock.observe(2, &t), 0);
        assert_eq!(clock.observe(5, &t), 2);
    }

    #[test]
    fn count_window_expiry_follows_sequencer_positions() {
        // A sharded clock sees only the subsequence routed to it, at the
        // sequencer's global positions; the bound must match what a
        // dense clock reports at the same positions, whatever the gaps.
        let (_, r, _, _) = Schema::sigma0();
        let t = tup(r, [1i64, 2]);
        let picks = [0u64, 1, 4, 9, 10, 63];
        let mut dense = WindowClock::new(WindowPolicy::Count(7));
        let mut dense_bounds = vec![0u64; 64];
        for i in 0..64 {
            dense_bounds[i as usize] = dense.observe(i, &t);
        }
        let mut gappy = WindowClock::new(WindowPolicy::Count(7));
        for &i in &picks {
            assert_eq!(gappy.observe(i, &t), dense_bounds[i as usize], "pos {i}");
        }
    }

    #[test]
    fn time_window_bound_with_gaps() {
        let (_, r, _, _) = Schema::sigma0();
        let mut clock = WindowClock::new(WindowPolicy::Time {
            duration: 10,
            ts_pos: 0,
        });
        // Sharded evaluators observe non-contiguous positions.
        assert_eq!(clock.observe(0, &tup(r, [0i64, 0])), 0);
        assert_eq!(clock.observe(4, &tup(r, [8i64, 0])), 0);
        assert_eq!(clock.observe(9, &tup(r, [16i64, 0])), 4);
        // A stale clock is clamped monotone.
        assert_eq!(clock.observe(12, &tup(r, [2i64, 0])), 4);
    }

    #[test]
    fn absorb_reclamps_interleaved_regressions_and_stays_encodable() {
        // Two ByKey replica clocks that clamped independently on a
        // contract-violating stream: interleaving their rings by
        // position regresses in ts, which the merged clock must clamp
        // (like the dense clock would) so its own snapshot encoding
        // stays decodable.
        let (_, r, _, _) = Schema::sigma0();
        let policy = WindowPolicy::Time {
            duration: 1000,
            ts_pos: 0,
        };
        let mut a = WindowClock::new(policy.clone());
        a.observe(0, &tup(r, [100i64, 0]));
        let mut b = WindowClock::new(policy);
        b.observe(1, &tup(r, [5i64, 0]));
        a.absorb(b);
        assert_eq!(a.last_ts, 100);
        assert!(
            a.ring
                .iter()
                .zip(a.ring.iter().skip(1))
                .all(|(&(p1, t1), &(p2, t2))| p1 < p2 && t1 <= t2),
            "merged ring monotone: {:?}",
            a.ring
        );
        let mut w = cer_common::wire::WireWriter::new();
        a.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut rdr = cer_common::wire::WireReader::new(&bytes);
        let back = WindowClock::decode(&mut rdr).unwrap();
        assert_eq!(back.ring, a.ring);
        assert_eq!(back.last_ts, 100);
    }

    #[test]
    fn out_of_order_timestamps_are_counted() {
        let (_, r, _, _) = Schema::sigma0();
        let mut clock = WindowClock::new(WindowPolicy::Time {
            duration: 10,
            ts_pos: 0,
        });
        clock.observe(0, &tup(r, [5i64, 0]));
        assert_eq!(clock.ts_regressions(), 0);
        clock.observe(1, &tup(r, [3i64, 0])); // regression: clamped to 5
        clock.observe(2, &tup(r, [5i64, 0])); // equal is NOT a regression
        clock.observe(3, &tup(r, [4i64, 0])); // regression again
        clock.observe(4, &tup(r, [9i64, 0]));
        assert_eq!(clock.ts_regressions(), 2);
        // Count windows never regress: there is no timestamp to clamp.
        let mut count = WindowClock::new(WindowPolicy::Count(3));
        count.observe(0, &tup(r, [9i64, 0]));
        count.observe(5, &tup(r, [1i64, 0]));
        assert_eq!(count.ts_regressions(), 0);
    }
}

//! Ingest/window stage: turning an arriving tuple into an expiry bound.
//!
//! Algorithm 1 is window-agnostic — the `DS_w` machinery only needs a
//! monotone lower bound `lo` such that positions `< lo` are expired at
//! the current position. This module isolates that computation behind
//! [`WindowClock`] so every evaluator (the PCEA engine, the baselines,
//! and the multi-query [`Runtime`](crate::runtime::Runtime) shards)
//! shares one implementation of the paper's count window and the
//! timestamp extension.
//!
//! Under the asynchronous pipeline ([`crate::ingest`]), the position
//! fed to [`WindowClock::observe`] is the one stamped by the ingest
//! *sequencer*, not a per-shard counter: expiry advances on the global
//! stream position (count windows) or on the tuple's own timestamp
//! attribute (time windows), never on arrival time or queue depth. A
//! shard that observes a gappy subsequence therefore computes the same
//! bound the dense evaluator would — this is invariant 2 of the
//! position-sequencing soundness argument in the
//! [`ingest`](crate::ingest) module docs.

use std::collections::VecDeque;

use cer_common::Tuple;

/// How the sliding window expires old positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowPolicy {
    /// The paper's count window: positions older than `i − w` expire.
    Count(u64),
    /// A time window: the tuple attribute at `ts_pos` is a
    /// non-decreasing integer timestamp, and positions whose timestamp
    /// falls below `now − duration` expire. The `DS_w` machinery is
    /// window-agnostic (it only needs a monotone expiry bound), so
    /// Theorem 5.1's guarantees carry over with `w` read as the maximum
    /// number of in-window positions.
    Time {
        /// Window length in timestamp units.
        duration: i64,
        /// Tuple position holding the integer timestamp.
        ts_pos: usize,
    },
}

/// The stateful ingest stage for one evaluator: feeds positions in
/// increasing order, returns the expiry bound for each.
///
/// Positions may have gaps (a sharded evaluator only sees the tuples
/// routed to it); the bound stays correct because it is only ever used
/// to filter nodes built from positions this evaluator *did* see.
#[derive(Clone, Debug)]
pub struct WindowClock {
    policy: WindowPolicy,
    /// Time windows: in-window `(position, timestamp)` ring.
    ring: VecDeque<(u64, i64)>,
    last_ts: i64,
}

impl WindowClock {
    /// A clock for the given policy.
    pub fn new(policy: WindowPolicy) -> Self {
        WindowClock {
            policy,
            ring: VecDeque::new(),
            last_ts: i64::MIN,
        }
    }

    /// The policy driving this clock.
    pub fn policy(&self) -> &WindowPolicy {
        &self.policy
    }

    /// For count windows, the window size `w` — the expiry bound is the
    /// pure function `lo = i − w` of the position, which lets batch
    /// evaluation hoist the policy dispatch out of its inner loop. Time
    /// windows return `None`: their bound depends on each tuple's
    /// timestamp, so they must go through [`observe`](Self::observe)
    /// tuple by tuple.
    pub fn count_window(&self) -> Option<u64> {
        match self.policy {
            WindowPolicy::Count(w) => Some(w),
            WindowPolicy::Time { .. } => None,
        }
    }

    /// Observe the tuple occupying position `i`; returns the expiry
    /// bound `lo`: every stored position `< lo` is out of the window at
    /// `i`.
    ///
    /// Panics for time windows when the tuple lacks an integer timestamp
    /// at the configured position. Out-of-order timestamps are clamped
    /// up to the latest seen by *this* clock.
    pub fn observe(&mut self, i: u64, t: &Tuple) -> u64 {
        match &self.policy {
            WindowPolicy::Count(w) => i.saturating_sub(*w),
            WindowPolicy::Time { duration, ts_pos } => {
                let ts = t
                    .values()
                    .get(*ts_pos)
                    .and_then(cer_common::Value::as_int)
                    .unwrap_or_else(|| {
                        panic!("time window: tuple lacks an integer timestamp at {ts_pos}")
                    })
                    .max(self.last_ts);
                self.last_ts = ts;
                self.ring.push_back((i, ts));
                while self
                    .ring
                    .front()
                    .is_some_and(|&(_, old)| old < ts.saturating_sub(*duration))
                {
                    self.ring.pop_front();
                }
                self.ring.front().map_or(i, |&(p, _)| p)
            }
        }
    }

    /// A reasonable default garbage-collection cadence for the policy.
    pub fn default_gc_every(&self) -> u64 {
        match self.policy {
            WindowPolicy::Count(w) => w.max(1024),
            WindowPolicy::Time { .. } => 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cer_common::tuple::tup;
    use cer_common::Schema;

    #[test]
    fn count_window_bound() {
        let (_, r, _, _) = Schema::sigma0();
        let mut clock = WindowClock::new(WindowPolicy::Count(3));
        let t = tup(r, [1i64, 2]);
        assert_eq!(clock.observe(0, &t), 0);
        assert_eq!(clock.observe(2, &t), 0);
        assert_eq!(clock.observe(5, &t), 2);
    }

    #[test]
    fn count_window_expiry_follows_sequencer_positions() {
        // A sharded clock sees only the subsequence routed to it, at the
        // sequencer's global positions; the bound must match what a
        // dense clock reports at the same positions, whatever the gaps.
        let (_, r, _, _) = Schema::sigma0();
        let t = tup(r, [1i64, 2]);
        let picks = [0u64, 1, 4, 9, 10, 63];
        let mut dense = WindowClock::new(WindowPolicy::Count(7));
        let mut dense_bounds = vec![0u64; 64];
        for i in 0..64 {
            dense_bounds[i as usize] = dense.observe(i, &t);
        }
        let mut gappy = WindowClock::new(WindowPolicy::Count(7));
        for &i in &picks {
            assert_eq!(gappy.observe(i, &t), dense_bounds[i as usize], "pos {i}");
        }
    }

    #[test]
    fn time_window_bound_with_gaps() {
        let (_, r, _, _) = Schema::sigma0();
        let mut clock = WindowClock::new(WindowPolicy::Time {
            duration: 10,
            ts_pos: 0,
        });
        // Sharded evaluators observe non-contiguous positions.
        assert_eq!(clock.observe(0, &tup(r, [0i64, 0])), 0);
        assert_eq!(clock.observe(4, &tup(r, [8i64, 0])), 0);
        assert_eq!(clock.observe(9, &tup(r, [16i64, 0])), 4);
        // A stale clock is clamped monotone.
        assert_eq!(clock.observe(12, &tup(r, [2i64, 0])), 4);
    }
}

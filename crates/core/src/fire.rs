//! Transition-firing and index-maintenance stages of Algorithm 1.
//!
//! [`FireStage`] owns the per-evaluator mutable state the two update
//! phases share — the look-up table `H`, the per-state node lists `N_p`
//! rebuilt each position, and the gather scratch — and exposes them as
//! explicit steps:
//!
//! * [`FireStage::fire_transitions`] — for every transition
//!   `(P, U, B, L, q)` whose unary predicate accepts the current tuple
//!   and whose every source slot has a stored run matching the tuple's
//!   join key, `extend` the gathered runs into a fresh `DS_w` node at
//!   `q`;
//! * [`FireStage::update_indices`] — index every node created this
//!   position in `H` under `(transition, slot, ⃗B_p(t))`, melding with
//!   previous entries via the persistent `union`;
//! * [`FireStage::collect_garbage`] — drop dead `H` entries and compact
//!   the arena around the live roots.
//!
//! For batch evaluation ([`StreamingEvaluator::push_slice_for_each`]),
//! the stage also owns the *vectorized* front half of FireTransitions:
//! [`FireStage::prefilter_slice`] evaluates every transition's unary
//! predicate across a whole slice of tuples into a compact bitmask
//! (one bit per `(tuple, transition)` pair), so the per-position loop
//! ([`FireStage::fire_transitions_masked`]) only visits transitions
//! whose unary predicate already accepted — a transition-major sweep
//! with much better predicate/branch locality than re-dispatching every
//! predicate at every position. The bitmask is a pure reordering of the
//! same predicate evaluations the tuple-at-a-time path performs, so
//! firing decisions are bit-identical.
//!
//! `N_p` bookkeeping is also batch-friendly: instead of clearing every
//! state's node list at every position, the stage records which states
//! were touched and clears only those ([`FireStage::begin_position`] is
//! `O(|touched|)`, not `O(|Q|)`).
//!
//! The [`StreamingEvaluator`](crate::evaluator::StreamingEvaluator)
//! composes these with the ingest/window stage
//! ([`WindowClock`](crate::window::WindowClock)) and the enumeration
//! stage ([`crate::enumerate`]).
//!
//! [`StreamingEvaluator::push_slice_for_each`]: crate::evaluator::StreamingEvaluator::push_slice_for_each

use crate::ds::{EnumStructure, NodeId};
use crate::evaluator::EngineStats;
use crate::shared::PredicateCache;
use cer_automata::pcea::{Pcea, Transition};
use cer_automata::predicate::{Key, UnaryPredicate};
use cer_common::hash::FxHashMap;
use cer_common::Tuple;

/// Look-up table key: `(transition index, source slot, join key)`.
type HKey = (u32, u32, Key);

/// The mutable state of the firing and indexing stages.
#[derive(Clone, Debug)]
pub(crate) struct FireStage {
    /// The look-up table `H`.
    h: FxHashMap<HKey, NodeId>,
    /// `N_p` per state, rebuilt each position.
    n_state: Vec<Vec<NodeId>>,
    /// States whose `N_p` list is currently non-empty; lets
    /// [`begin_position`](Self::begin_position) clear only those.
    touched: Vec<u32>,
    /// Scratch for gathered source nodes.
    gather: Vec<NodeId>,
    /// Per-batch unary pre-filter: bit `e % 64` of word
    /// `j * stride + e / 64` is set iff transition `e`'s unary predicate
    /// accepts tuple `j` of the current slice. Reused across batches.
    unary_mask: Vec<u64>,
}

impl FireStage {
    pub(crate) fn new(num_states: usize) -> Self {
        FireStage {
            h: FxHashMap::default(),
            n_state: vec![Vec::new(); num_states],
            touched: Vec::new(),
            gather: Vec::new(),
            unary_mask: Vec::new(),
        }
    }

    /// Entries currently in `H`.
    pub(crate) fn index_entries(&self) -> usize {
        self.h.len()
    }

    /// Nodes created at the current position targeting state `q`.
    pub(crate) fn nodes_at(&self, q: usize) -> &[NodeId] {
        &self.n_state[q]
    }

    /// Forget the previous position's `N_p` lists. Only states actually
    /// touched since the last call are cleared, so a position that fired
    /// nothing costs nothing here.
    pub(crate) fn begin_position(&mut self) {
        for q in self.touched.drain(..) {
            self.n_state[q as usize].clear();
        }
    }

    /// The shared back half of FireTransitions for one transition whose
    /// unary predicate already accepted `t`: gather matching stored runs
    /// and `extend` them with the tuple at position `i`.
    #[allow(clippy::too_many_arguments)]
    fn fire_one(
        &mut self,
        e_idx: usize,
        tr: &Transition,
        ds: &mut EnumStructure,
        t: &Tuple,
        i: u64,
        lo: u64,
        stats: &mut EngineStats,
    ) {
        self.gather.clear();
        for (slot, b) in tr.binary.iter().enumerate() {
            let Some(key) = b.right.extract(t) else {
                return;
            };
            match self.h.get(&(e_idx as u32, slot as u32, key)) {
                Some(&node) if ds.max_start(node) >= lo => self.gather.push(node),
                _ => return,
            }
        }
        let node = ds.extend(tr.labels, i, &self.gather);
        stats.extends += 1;
        let q = tr.target.index();
        if self.n_state[q].is_empty() {
            self.touched.push(q as u32);
        }
        self.n_state[q].push(node);
    }

    /// FireTransitions: gather matching stored runs per transition and
    /// `extend` them with the current tuple at position `i`.
    pub(crate) fn fire_transitions(
        &mut self,
        pcea: &Pcea,
        ds: &mut EnumStructure,
        t: &Tuple,
        i: u64,
        lo: u64,
        stats: &mut EngineStats,
    ) {
        for (e_idx, tr) in pcea.transitions().iter().enumerate() {
            if !tr.unary.matches(t) {
                continue;
            }
            self.fire_one(e_idx, tr, ds, t, i, lo, stats);
        }
    }

    /// Vectorized front half of FireTransitions: evaluate every
    /// transition's unary predicate across the whole slice into the
    /// reusable [`unary_mask`](Self::unary_mask) bitmask, transition by
    /// transition. Returns the per-tuple stride in 64-bit words.
    ///
    /// The iterator must yield exactly `len` tuples — the same tuples,
    /// in the same order, that are later passed to
    /// [`fire_transitions_masked`](Self::fire_transitions_masked) with
    /// their slice index `j`.
    pub(crate) fn prefilter_slice<'t>(
        &mut self,
        pcea: &Pcea,
        tuples: impl Iterator<Item = &'t Tuple> + Clone,
        len: usize,
    ) -> usize {
        let n_trans = pcea.transitions().len();
        let stride = n_trans.div_ceil(64).max(1);
        self.unary_mask.clear();
        self.unary_mask.resize(len * stride, 0);
        // Is the whole slice one relation? One cheap pass lets relation
        // tests below resolve per-transition instead of per-tuple.
        let batch_rel = {
            let mut it = tuples.clone();
            it.next()
                .map(|t0| t0.relation())
                .filter(|&r0| tuples.clone().all(|t| t.relation() == r0))
        };
        for (e_idx, tr) in pcea.transitions().iter().enumerate() {
            let (word, bit) = (e_idx / 64, 1u64 << (e_idx % 64));
            // `True` accepts everything: fill the column without
            // touching a single tuple.
            if matches!(tr.unary, UnaryPredicate::True) {
                for j in 0..len {
                    self.unary_mask[j * stride + word] |= bit;
                }
                continue;
            }
            if let Some(r) = batch_rel {
                // Relation-constant slice: an exact relation test is
                // all-or-nothing, and any predicate that rejects the
                // relation skips the slice outright.
                if matches!(tr.unary, UnaryPredicate::Relation(x) if x == r) {
                    for j in 0..len {
                        self.unary_mask[j * stride + word] |= bit;
                    }
                    continue;
                }
                if tr.unary.rejects_relation(r) {
                    continue;
                }
            }
            for (j, t) in tuples.clone().enumerate() {
                if tr.unary.matches(t) {
                    self.unary_mask[j * stride + word] |= bit;
                }
            }
        }
        stride
    }

    /// Shared-prefilter variant for the multi-query runtime: instead of
    /// evaluating `tr.unary` per transition, gather each transition's
    /// bits from the shard's [`PredicateCache`] through the query's
    /// indirection table `slots` (transition index → shared predicate
    /// slot). The cache evaluates each *distinct* predicate at most
    /// once per tuple per batch, no matter how many queries reference
    /// it; this fan-out is pure bit movement.
    ///
    /// `sel` holds the query's tuple indices into the stamped batch
    /// `tuples` (increasing). The produced mask is laid out over `sel`
    /// exactly as [`prefilter_slice`](Self::prefilter_slice) lays it
    /// over its slice, so
    /// [`fire_transitions_masked`](Self::fire_transitions_masked)
    /// consumes both identically — and the bits themselves are the same
    /// `matches()` outcomes, so firing decisions are bit-identical.
    pub(crate) fn prefilter_shared(
        &mut self,
        pcea: &Pcea,
        cache: &mut PredicateCache,
        slots: &[u32],
        sel: &[u32],
        tuples: &[(u64, Tuple)],
    ) -> usize {
        let n_trans = pcea.transitions().len();
        debug_assert_eq!(slots.len(), n_trans);
        let stride = n_trans.div_ceil(64).max(1);
        self.unary_mask.clear();
        self.unary_mask.resize(sel.len() * stride, 0);
        for (e_idx, &slot) in slots.iter().enumerate() {
            let (word, bit) = (e_idx / 64, 1u64 << (e_idx % 64));
            let pool = cache.ensure(slot, tuples);
            for (jj, &j) in sel.iter().enumerate() {
                let j = j as usize;
                if pool[j / 64] >> (j % 64) & 1 == 1 {
                    self.unary_mask[jj * stride + word] |= bit;
                }
            }
        }
        stride
    }

    /// FireTransitions for tuple `j` of a pre-filtered slice: identical
    /// to [`fire_transitions`](Self::fire_transitions), but the unary
    /// predicate outcomes are read from the bitmask filled by
    /// [`prefilter_slice`](Self::prefilter_slice) instead of being
    /// re-evaluated, and non-matching transitions are skipped in bulk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn fire_transitions_masked(
        &mut self,
        pcea: &Pcea,
        ds: &mut EnumStructure,
        t: &Tuple,
        i: u64,
        lo: u64,
        stats: &mut EngineStats,
        j: usize,
        stride: usize,
    ) {
        let trs = pcea.transitions();
        for k in 0..stride {
            let mut word = self.unary_mask[j * stride + k];
            while word != 0 {
                let e_idx = k * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                self.fire_one(e_idx, &trs[e_idx], ds, t, i, lo, stats);
            }
        }
    }

    /// UpdateIndices: make this position's runs visible to future tuples
    /// under their left join keys.
    pub(crate) fn update_indices(
        &mut self,
        pcea: &Pcea,
        ds: &mut EnumStructure,
        t: &Tuple,
        lo: u64,
        stats: &mut EngineStats,
    ) {
        for (e_idx, tr) in pcea.transitions().iter().enumerate() {
            for (slot, (p, b)) in tr.sources.iter().zip(tr.binary.iter()).enumerate() {
                if self.n_state[p.index()].is_empty() {
                    continue;
                }
                let Some(key) = b.left.extract(t) else {
                    continue;
                };
                let hkey = (e_idx as u32, slot as u32, key);
                for k in 0..self.n_state[p.index()].len() {
                    let node = self.n_state[p.index()][k];
                    let merged = match self.h.get(&hkey) {
                        Some(&prev) => {
                            stats.unions += 1;
                            ds.union(prev, node, lo)
                        }
                        None => node,
                    };
                    self.h.insert(hkey.clone(), merged);
                }
            }
        }
    }

    /// Checkpoint encoding of the look-up table `H` (the only
    /// cross-position state this stage owns — the `N_p` lists and all
    /// scratch are per-position and deliberately excluded; see
    /// [`crate::checkpoint`]). Entries are sorted so identical tables
    /// encode to identical bytes.
    pub(crate) fn encode(
        &self,
        w: &mut cer_common::wire::WireWriter,
    ) -> Result<(), cer_common::wire::WireError> {
        use cer_common::wire::Wire;
        let mut entries: Vec<(&HKey, &NodeId)> = self.h.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_len(entries.len());
        for ((e_idx, slot, key), node) in entries {
            w.put_u32(*e_idx);
            w.put_u32(*slot);
            key.encode(w)?;
            w.put_u32(node.0);
        }
        Ok(())
    }

    /// Decode a table encoded by [`encode`](Self::encode) into a fresh
    /// stage for an automaton with `num_states` states whose arena has
    /// `arena_len` nodes (for link validation).
    pub(crate) fn decode(
        r: &mut cer_common::wire::WireReader<'_>,
        num_states: usize,
        arena_len: usize,
    ) -> Result<Self, cer_common::wire::WireError> {
        use cer_common::wire::{Wire, WireError};
        let mut stage = FireStage::new(num_states);
        let n = r.get_len()?;
        for _ in 0..n {
            let e_idx = r.get_u32()?;
            let slot = r.get_u32()?;
            let key = cer_automata::predicate::Key::decode(r)?;
            let node = r.get_u32()?;
            if node as usize >= arena_len {
                return Err(WireError::Corrupt("H entry past the arena"));
            }
            stage.h.insert((e_idx, slot, key), NodeId(node));
        }
        Ok(stage)
    }

    /// Merge another replica's `H` entries into this stage, with
    /// `offset` the arena id shift returned by
    /// [`EnumStructure::absorb`]. Replicas of a soundly key-partitioned
    /// query hold disjoint key sets (the join key determines the
    /// partition value, which determines the shard), so collisions are
    /// not expected — but a colliding entry is still merged correctly
    /// via the persistent `union` rather than silently dropped.
    pub(crate) fn absorb(
        &mut self,
        other: FireStage,
        offset: u32,
        ds: &mut EnumStructure,
        stats: &mut EngineStats,
    ) {
        for ((e_idx, slot, key), node) in other.h {
            let node = NodeId(node.0 + offset);
            match self.h.entry((e_idx, slot, key)) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(node);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    stats.unions += 1;
                    // `lo = 0` keeps every subtree: expiry is re-applied
                    // lazily at the next position anyway.
                    let merged = ds.union(*o.get(), node, 0);
                    o.insert(merged);
                }
            }
        }
    }

    /// Drop every `H` entry whose join key belongs to a different shard
    /// of a `(pos, n_shards)` key partition, then compact the arena
    /// around the survivors.
    ///
    /// Soundness of [`Partition::ByKey`](crate::runtime::Partition)
    /// guarantees ([`Pcea::supports_key_partition`]) that every join
    /// predicate projects the partition attribute at a common key index
    /// on both sides — so for each `(transition, slot)` the owning shard
    /// of an entry is computable from its stored key alone, with exactly
    /// the hash `key_shard` uses for tuple routing. Entries whose owner
    /// cannot be determined (no common
    /// index, short key) are conservatively kept.
    ///
    /// This is what makes replica redistribution *idempotent*: a full
    /// copy of merged state handed to each home of a new layout would
    /// otherwise hold every other home's runs too, and the next
    /// merge-of-replicas would duplicate them (see
    /// [`crate::checkpoint`]).
    pub(crate) fn retain_key_shard(
        &mut self,
        pcea: &Pcea,
        pos: usize,
        shard: usize,
        n_shards: usize,
        hasher: &cer_common::hash::FxBuildHasher,
        ds: &mut EnumStructure,
    ) {
        use std::hash::BuildHasher;
        // Per (transition, slot): the key index carrying the partition
        // attribute, `None` when no common index exists.
        let key_index: Vec<Vec<Option<u32>>> = pcea
            .transitions()
            .iter()
            .map(|tr| {
                tr.binary
                    .iter()
                    .map(|b| {
                        let mask =
                            b.left.projection_index_mask(pos) & b.right.projection_index_mask(pos);
                        (mask != 0).then(|| mask.trailing_zeros())
                    })
                    .collect()
            })
            .collect();
        self.h.retain(|(e_idx, slot, key), _| {
            match key_index
                .get(*e_idx as usize)
                .and_then(|slots| slots.get(*slot as usize))
                .copied()
                .flatten()
            {
                Some(i) => match key.get(i as usize) {
                    Some(v) => (hasher.hash_one(v) % n_shards as u64) as usize == shard,
                    None => true,
                },
                None => true,
            }
        });
        // Compact with `lo = 0`: after a merge, `current_lo` is the max
        // across replicas, which may overshoot a slice that saw older
        // in-window tuples — expiry is re-applied lazily from the
        // merged clock at the next position, exactly as in
        // [`absorb`](Self::absorb).
        self.collect_garbage(ds, 0);
    }

    /// Copying garbage collection: keep only nodes reachable from live
    /// `H` entries (and the current position's pending nodes), dropping
    /// expired subtrees. Fully transparent to outputs.
    pub(crate) fn collect_garbage(&mut self, ds: &mut EnumStructure, lo: u64) {
        // Drop dead index entries first.
        self.h.retain(|_, node| ds.max_start(*node) >= lo);
        let mut roots: Vec<&mut NodeId> = self
            .h
            .values_mut()
            .chain(self.n_state.iter_mut().flatten())
            .collect();
        ds.compact(&mut roots, lo);
    }
}

//! Transition-firing and index-maintenance stages of Algorithm 1.
//!
//! [`FireStage`] owns the per-evaluator mutable state the two update
//! phases share — the look-up table `H`, the per-state node lists `N_p`
//! rebuilt each position, and the gather scratch — and exposes them as
//! explicit steps:
//!
//! * [`FireStage::fire_transitions`] — for every transition
//!   `(P, U, B, L, q)` whose unary predicate accepts the current tuple
//!   and whose every source slot has a stored run matching the tuple's
//!   join key, `extend` the gathered runs into a fresh `DS_w` node at
//!   `q`;
//! * [`FireStage::update_indices`] — index every node created this
//!   position in `H` under `(transition, slot, ⃗B_p(t))`, melding with
//!   previous entries via the persistent `union`;
//! * [`FireStage::collect_garbage`] — drop dead `H` entries and compact
//!   the arena around the live roots.
//!
//! The [`StreamingEvaluator`](crate::evaluator::StreamingEvaluator)
//! composes these with the ingest/window stage
//! ([`WindowClock`](crate::window::WindowClock)) and the enumeration
//! stage ([`crate::enumerate`]).

use crate::ds::{EnumStructure, NodeId};
use crate::evaluator::EngineStats;
use cer_automata::pcea::Pcea;
use cer_automata::predicate::Key;
use cer_common::hash::FxHashMap;
use cer_common::Tuple;

/// Look-up table key: `(transition index, source slot, join key)`.
type HKey = (u32, u32, Key);

/// The mutable state of the firing and indexing stages.
#[derive(Clone, Debug)]
pub(crate) struct FireStage {
    /// The look-up table `H`.
    h: FxHashMap<HKey, NodeId>,
    /// `N_p` per state, rebuilt each position.
    n_state: Vec<Vec<NodeId>>,
    /// Scratch for gathered source nodes.
    gather: Vec<NodeId>,
}

impl FireStage {
    pub(crate) fn new(num_states: usize) -> Self {
        FireStage {
            h: FxHashMap::default(),
            n_state: vec![Vec::new(); num_states],
            gather: Vec::new(),
        }
    }

    /// Entries currently in `H`.
    pub(crate) fn index_entries(&self) -> usize {
        self.h.len()
    }

    /// Nodes created at the current position targeting state `q`.
    pub(crate) fn nodes_at(&self, q: usize) -> &[NodeId] {
        &self.n_state[q]
    }

    /// Forget the previous position's `N_p` lists.
    pub(crate) fn begin_position(&mut self) {
        for n in &mut self.n_state {
            n.clear();
        }
    }

    /// FireTransitions: gather matching stored runs per transition and
    /// `extend` them with the current tuple at position `i`.
    pub(crate) fn fire_transitions(
        &mut self,
        pcea: &Pcea,
        ds: &mut EnumStructure,
        t: &Tuple,
        i: u64,
        lo: u64,
        stats: &mut EngineStats,
    ) {
        for (e_idx, tr) in pcea.transitions().iter().enumerate() {
            if !tr.unary.matches(t) {
                continue;
            }
            self.gather.clear();
            let mut all_present = true;
            for (slot, b) in tr.binary.iter().enumerate() {
                let Some(key) = b.right.extract(t) else {
                    all_present = false;
                    break;
                };
                match self.h.get(&(e_idx as u32, slot as u32, key)) {
                    Some(&node) if ds.max_start(node) >= lo => self.gather.push(node),
                    _ => {
                        all_present = false;
                        break;
                    }
                }
            }
            if !all_present {
                continue;
            }
            let node = ds.extend(tr.labels, i, &self.gather);
            stats.extends += 1;
            self.n_state[tr.target.index()].push(node);
        }
    }

    /// UpdateIndices: make this position's runs visible to future tuples
    /// under their left join keys.
    pub(crate) fn update_indices(
        &mut self,
        pcea: &Pcea,
        ds: &mut EnumStructure,
        t: &Tuple,
        lo: u64,
        stats: &mut EngineStats,
    ) {
        for (e_idx, tr) in pcea.transitions().iter().enumerate() {
            for (slot, (p, b)) in tr.sources.iter().zip(tr.binary.iter()).enumerate() {
                if self.n_state[p.index()].is_empty() {
                    continue;
                }
                let Some(key) = b.left.extract(t) else {
                    continue;
                };
                let hkey = (e_idx as u32, slot as u32, key);
                for k in 0..self.n_state[p.index()].len() {
                    let node = self.n_state[p.index()][k];
                    let merged = match self.h.get(&hkey) {
                        Some(&prev) => {
                            stats.unions += 1;
                            ds.union(prev, node, lo)
                        }
                        None => node,
                    };
                    self.h.insert(hkey.clone(), merged);
                }
            }
        }
    }

    /// Copying garbage collection: keep only nodes reachable from live
    /// `H` entries (and the current position's pending nodes), dropping
    /// expired subtrees. Fully transparent to outputs.
    pub(crate) fn collect_garbage(&mut self, ds: &mut EnumStructure, lo: u64) {
        // Drop dead index entries first.
        self.h.retain(|_, node| ds.max_start(*node) >= lo);
        let mut roots: Vec<&mut NodeId> = self
            .h
            .values_mut()
            .chain(self.n_state.iter_mut().flatten())
            .collect();
        ds.compact(&mut roots, lo);
    }
}

//! Query playground: type a conjunctive query, get a diagnosis and (when
//! hierarchical) the compiled automaton.
//!
//! ```text
//! cargo run --example query_playground -- "Q(x, y) <- T(x), S(x, y), R(x, y)"
//! cargo run --example query_playground -- "Q(x, y) <- R(x), S(x, y), T(y)"
//! cargo run --example query_playground -- "Q(x) <- T(x), T(x)"
//! ```

use pcea::cq::hierarchy::{check_hierarchical, HierarchyViolation};
use pcea::cq::jointree::gyo_join_tree;
use pcea::cq::qtree::QTree;
use pcea::prelude::*;

fn main() {
    let text = std::env::args().nth(1).unwrap_or_else(|| {
        println!("no query given; using the paper's Q0\n");
        "Q0(x, y) <- T(x), S(x, y), R(x, y)".to_string()
    });

    let mut schema = Schema::new();
    let query = match parse_query(&mut schema, &text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };
    println!("query        : {}", query.display(&schema));
    println!("atoms        : {}", query.num_atoms());
    println!("variables    : {}", query.num_vars());
    println!("full         : {}", query.is_full());
    println!("connected    : {}", query.is_connected());
    println!("self-joins   : {}", query.has_self_joins());

    // Acyclicity (GYO).
    match gyo_join_tree(&query) {
        Some(jt) => {
            jt.validate(&query).expect("GYO produces valid join trees");
            println!(
                "acyclic      : yes ({} distinct atoms in join tree)",
                jt.atoms.len()
            );
        }
        None => println!("acyclic      : no"),
    }

    // Hierarchy.
    match check_hierarchical(&query) {
        Ok(()) => println!("hierarchical : yes"),
        Err(HierarchyViolation::NotFull) => println!("hierarchical : no (not full)"),
        Err(HierarchyViolation::CrossingPair { x, y }) => println!(
            "hierarchical : no (atoms({}) and atoms({}) cross)",
            query.var_name(x),
            query.var_name(y)
        ),
    }

    // q-tree, when it exists.
    if let Ok(tree) = QTree::build_rooted(&query) {
        let compact = tree.compact();
        println!(
            "q-tree       : {} nodes ({} after compaction)",
            tree.iter().count(),
            compact.iter().count()
        );
    }

    // Compile.
    match compile_hcq(&schema, &query) {
        Ok(c) => {
            println!(
                "compiled     : {} states, {} transitions, size {} ({})",
                c.pcea.num_states(),
                c.pcea.transitions().len(),
                c.pcea.size(),
                if c.used_self_join_construction {
                    "self-join construction"
                } else {
                    "quadratic construction"
                }
            );
            println!("states       : {:?}", c.state_names);
            println!("finals       : {:?}", c.pcea.finals().collect::<Vec<_>>());
        }
        Err(e) => println!("compiled     : refused — {e}"),
    }
}

//! Every worked example and figure of the paper, executed:
//!
//! * Example 2.1 — the CCEA `C0` over `S0`;
//! * Example 3.1 / Figure 1 (left) — the PFA `P0` and its language;
//! * Example 3.3 / Figure 1 (right) — the PCEA `P0` and its two run
//!   trees at position 5;
//! * Figure 2 — the q-tree of `Q0` and the compiled `P_{Q0}`;
//! * Figures 3–4 — q-trees and compact q-trees of `Q1` and the self-join
//!   query `Q2`;
//! * Proposition 3.2 — determinizing the PFA `P0`.
//!
//! Run with: `cargo run --example paper_examples`

use pcea::automata::ccea::paper_c0;
use pcea::automata::pcea::paper_p0;
use pcea::automata::pfa::Pfa;
use pcea::cq::qtree::QTree;
use pcea::prelude::*;

fn main() {
    let (schema, r, s, t) = Schema::sigma0();
    let stream = sigma0_prefix(r, s, t);
    println!("stream S0 :");
    for (i, tu) in stream.iter().enumerate() {
        print!(" {}@{i}", tu.display(&schema));
    }
    println!("\n");

    // ---- Example 2.1: the CCEA C0.
    println!("Example 2.1 — CCEA C0 over S0");
    let c0 = paper_c0(r, s, t).to_pcea();
    let eval = ReferenceEval::new(&c0, &stream);
    for n in 0..stream.len() {
        for v in eval.outputs_at(n) {
            println!("  accepting at {n}: {v:?}");
        }
    }
    println!();

    // ---- Example 3.1 / Figure 1 left: the PFA P0.
    println!("Example 3.1 — PFA P0 (T and S in any order before R)");
    let pfa = Pfa::paper_p0();
    for word in [
        vec![0u32, 1, 2], // T S R — accept
        vec![1, 0, 2],    // S T R — accept
        vec![0, 2],       // T R   — reject
    ] {
        println!("  accepts {word:?} = {}", pfa.accepts(&word));
    }
    println!();

    // ---- Example 3.3 / Figure 1 right: the PCEA P0.
    println!("Example 3.3 — PCEA P0 over S0 at position 5");
    let p0 = paper_p0(r, s, t);
    let eval = ReferenceEval::new(&p0, &stream);
    for run in eval.accepting_runs_at(5) {
        println!(
            "  run tree with valuation {:?} ({} nodes)",
            run.valuation(1),
            run.node_count()
        );
    }
    eval.check_unambiguous().expect("P0 is unambiguous");
    println!("  (P0 verified unambiguous on S0)\n");

    // ---- Figure 2: q-tree of Q0 and the compiled automaton.
    println!("Figure 2 — q-tree and compiled PCEA for Q0");
    let mut qschema = Schema::new();
    let q0 = parse_query(&mut qschema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let tree = QTree::build(&q0).unwrap();
    tree.validate_full(&q0).unwrap();
    println!(
        "  q-tree has {} nodes (x above y; leaves T,S,R)",
        tree.len()
    );
    let compiled = compile_hcq(&qschema, &q0).unwrap();
    println!("  compiled: states {:?}", compiled.state_names);

    // ---- Figures 3–4: q-trees of Q1 and the self-join Q2.
    println!("\nFigures 3-4 — q-trees / compact q-trees");
    let mut s1 = Schema::new();
    let q1 = parse_query(
        &mut s1,
        "Q1(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)",
    )
    .unwrap();
    let t1 = QTree::build(&q1).unwrap();
    println!(
        "  Q1: full q-tree {} nodes, compact {} nodes",
        t1.len(),
        t1.compact().iter().count()
    );
    let mut s2 = Schema::new();
    let q2 = parse_query(&mut s2, "Q2(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)").unwrap();
    let t2 = QTree::build(&q2).unwrap();
    println!(
        "  Q2 (self-join): full q-tree {} nodes, compact {} nodes",
        t2.len(),
        t2.compact().iter().count()
    );
    let c2 = compile_hcq(&s2, &q2).unwrap();
    println!(
        "  Q2 compiled with the self-join construction: {} states, {} transitions",
        c2.pcea.num_states(),
        c2.pcea.transitions().len()
    );

    // ---- Proposition 3.2: determinization.
    println!("\nProposition 3.2 — determinizing the PFA P0");
    let dfa = pfa.to_dfa();
    println!(
        "  PFA with {} states -> DFA with {} states (bound 2^{} = {})",
        pfa.num_states(),
        dfa.num_states(),
        pfa.num_states(),
        1u64 << pfa.num_states()
    );
}

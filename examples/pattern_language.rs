//! The PCEA pattern language in action — the paper's first future-work
//! item ("a query language that characterizes the expressive power of
//! PCEA"), proposed and implemented in `cer-lang`.
//!
//! ```text
//! cargo run --example pattern_language
//! cargo run --example pattern_language -- "A(x) ; B(x, _)+ [1 > 10]"
//! ```
//!
//! Without an argument, runs a tour of patterns over the stock feed.

use pcea::common::gen::StockGen;
use pcea::prelude::*;

fn main() {
    if let Some(text) = std::env::args().nth(1) {
        inspect(&text);
        return;
    }
    tour();
}

/// Compile a user-supplied pattern and print its automaton.
fn inspect(text: &str) {
    let mut schema = Schema::new();
    match pattern_to_pcea(&mut schema, text) {
        Ok(c) => {
            println!("pattern : {text}");
            println!("atoms   : {:?}", c.atom_names);
            println!(
                "automaton: {} states, {} transitions, size {}",
                c.pcea.num_states(),
                c.pcea.transitions().len(),
                c.pcea.size()
            );
            println!("states  : {:?}", c.state_names);
            println!("finals  : {:?}", c.pcea.finals().collect::<Vec<_>>());
        }
        Err(e) => println!("rejected: {e}"),
    }
}

fn tour() {
    // One schema shared by the feed and the patterns.
    let mut schema = Schema::new();
    let mut feed = StockGen::build(&mut schema, 99).expect("fresh schema");

    let patterns = [
        // The paper's P0 shape: two independent events joined later.
        ("correlated alert", r#"BUY(x, _) && SELL(x, _) ; ALERT(x)"#),
        // Iteration with a value filter: a run of expensive buys after
        // an alert (soft sequencing: the last buy is after the alert).
        ("buy streak", "ALERT(x) ; BUY(x, _)+ [1 > 100]"),
        // Disjunction: any trade of an alerted ticker.
        ("any trade", "ALERT(x) ; (BUY(x, _) | SELL(x, _))"),
    ];

    let window = 48u64;
    let events = 30_000usize;
    let mut engines: Vec<(&str, StreamingEvaluator)> = patterns
        .iter()
        .map(|(name, text)| {
            let compiled = pattern_to_pcea(&mut schema, text).expect("valid pattern");
            println!(
                "{name:16} {text}\n{:16} -> {} states / {} transitions",
                "",
                compiled.pcea.num_states(),
                compiled.pcea.transitions().len()
            );
            (*name, StreamingEvaluator::new(compiled.pcea, window))
        })
        .collect();
    println!();

    let mut counts = vec![0usize; engines.len()];
    for _ in 0..events {
        let t = feed.next_tuple().expect("infinite");
        for (k, (_, engine)) in engines.iter_mut().enumerate() {
            counts[k] += engine.push_count(&t);
        }
    }
    println!("{events} events, window {window}:");
    for ((name, _), n) in engines.iter().zip(&counts) {
        println!("  {name:16} {n} matches");
    }

    // And a rejection: unanchored correlation (the language-level
    // Theorem 4.2 boundary).
    let mut s2 = Schema::new();
    let bad = "S(x, y) ; A(x) ; R(y)";
    match pattern_to_pcea(&mut s2, bad) {
        Err(e) => println!("\nrejected   {bad}\n           ({e})"),
        Ok(_) => unreachable!("y is unanchored through A(x)"),
    }
}

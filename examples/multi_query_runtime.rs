//! The sharded multi-query runtime: many standing queries over one
//! stream, with relation routing, key-partitioned sharding — and the
//! asynchronous ingestion pipeline (`IngestHandle` producers feeding
//! backpressured shard queues, `Subscription` consumers receiving
//! match events out of band).
//!
//! Run with `cargo run --release --example multi_query_runtime`.

use pcea::prelude::*;
use std::time::Instant;

fn main() {
    let mut schema = Schema::new();

    // Three standing queries from two front-ends over one firehose.
    let fire = parse_query(
        &mut schema,
        "Fire(n, c, p) <- ALARM(n), TEMP(n, c), SMOKE(n, p)",
    )
    .unwrap();
    let fire_pcea = compile_hcq(&schema, &fire).unwrap().pcea;
    let spike = pattern_to_pcea(&mut schema, "TEMP(n, _) ; SMOKE(n, _)")
        .unwrap()
        .pcea;
    let alarm_echo = pattern_to_pcea(&mut schema, "ALARM(n) ; ALARM(n)")
        .unwrap()
        .pcea;

    let mut runtime = Runtime::new(4);
    let fire_id = runtime
        .register(
            QuerySpec::new("fire", fire_pcea, WindowPolicy::Count(128))
                // All joins are keyed on the node id (attribute 0), so
                // the hot fire query scales across every shard.
                .with_partition(Partition::ByKey { pos: 0 }),
        )
        .unwrap();
    let spike_id = runtime
        .register(QuerySpec::new("spike", spike, WindowPolicy::Count(32)))
        .unwrap();
    let echo_id = runtime
        .register(QuerySpec::new(
            "alarm_echo",
            alarm_echo,
            WindowPolicy::Count(256),
        ))
        .unwrap();

    // Replay a sensor feed through the async pipeline: two producer
    // threads clone the IngestHandle and feed batches concurrently, a
    // consumer thread drains a subscription while ingestion is still
    // running — nobody waits for anybody.
    let mut feed = SensorGen::build(&mut schema, 64, 2024).unwrap();
    let events_total = 200_000usize;
    let batch_size = 1_000usize;
    let stream: Vec<Tuple> = (0..events_total)
        .map(|_| feed.next_tuple().unwrap())
        .collect();

    let subscription = runtime.subscribe(SubscriptionFilter::All);
    let started = Instant::now();
    let counts: [usize; 3] = std::thread::scope(|scope| {
        for half in stream.chunks(events_total / 2) {
            let handle = runtime.ingest_handle();
            scope.spawn(move || {
                for batch in half.chunks(batch_size) {
                    handle.push_batch(batch).expect("runtime alive");
                }
            });
        }
        let consumer = scope.spawn(|| {
            let mut counts = [0usize; 3];
            let slot_of = |q: QueryId| match q {
                q if q == fire_id => 0,
                q if q == spike_id => 1,
                q if q == echo_id => 2,
                _ => unreachable!(),
            };
            // Poll until the producers are done and the pipeline is dry;
            // the final drain() fence below guarantees completeness.
            loop {
                match subscription.recv_timeout(std::time::Duration::from_millis(50)) {
                    Some(event) => counts[slot_of(event.query)] += 1,
                    None if runtime.next_position() == events_total as u64 => {
                        runtime.drain();
                        for event in subscription.drain() {
                            counts[slot_of(event.query)] += 1;
                        }
                        return counts;
                    }
                    None => {}
                }
            }
        });
        consumer.join().unwrap()
    });
    let secs = started.elapsed().as_secs_f64();

    println!("processed {events_total} events across 3 queries on 4 shards in {secs:.2}s");
    println!(
        "  throughput:    {:>10.0} tuples/sec (2 producers, 1 subscriber)",
        events_total as f64 / secs
    );
    println!("  fire matches:  {:>10}", counts[0]);
    println!("  spike matches: {:>10}", counts[1]);
    println!("  echo matches:  {:>10}", counts[2]);
    let stats = runtime.stats();
    for (id, st) in &stats.per_query {
        println!(
            "  {}: {} positions seen, {} extends, {} live arena nodes",
            runtime.query_name(*id).unwrap_or("<unknown>"),
            st.positions,
            st.extends,
            st.arena_nodes
        );
    }
    for (shard, q) in stats.shard_queues.iter().enumerate() {
        println!(
            "  shard {shard} queue: depth {}, high-water {}, dropped {}",
            q.depth, q.high_water, q.dropped
        );
    }
    assert!(counts.iter().all(|&c| c > 0), "every query should fire");
    assert!(
        stats.shard_queues.iter().all(|q| q.dropped == 0),
        "Block backpressure never drops"
    );
}

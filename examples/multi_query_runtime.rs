//! The sharded multi-query runtime: many standing queries over one
//! stream, with relation routing and key-partitioned sharding.
//!
//! Run with `cargo run --release --example multi_query_runtime`.

use pcea::prelude::*;
use std::time::Instant;

fn main() {
    let mut schema = Schema::new();

    // Three standing queries from two front-ends over one firehose.
    let fire = parse_query(
        &mut schema,
        "Fire(n, c, p) <- ALARM(n), TEMP(n, c), SMOKE(n, p)",
    )
    .unwrap();
    let fire_pcea = compile_hcq(&schema, &fire).unwrap().pcea;
    let spike = pattern_to_pcea(&mut schema, "TEMP(n, _) ; SMOKE(n, _)")
        .unwrap()
        .pcea;
    let alarm_echo = pattern_to_pcea(&mut schema, "ALARM(n) ; ALARM(n)")
        .unwrap()
        .pcea;

    let mut runtime = Runtime::new(4);
    let fire_id = runtime
        .register(
            QuerySpec::new("fire", fire_pcea, WindowPolicy::Count(128))
                // All joins are keyed on the node id (attribute 0), so
                // the hot fire query scales across every shard.
                .with_partition(Partition::ByKey { pos: 0 }),
        )
        .unwrap();
    let spike_id = runtime
        .register(QuerySpec::new("spike", spike, WindowPolicy::Count(32)))
        .unwrap();
    let echo_id = runtime
        .register(QuerySpec::new(
            "alarm_echo",
            alarm_echo,
            WindowPolicy::Count(256),
        ))
        .unwrap();

    // Replay a sensor feed in batches, as an ingestion loop would.
    let mut feed = SensorGen::build(&mut schema, 64, 2024).unwrap();
    let events_total = 200_000usize;
    let batch_size = 1_000usize;
    let mut counts = [0usize; 3];
    let started = Instant::now();
    for _ in 0..events_total / batch_size {
        let batch: Vec<Tuple> = (0..batch_size)
            .map(|_| feed.next_tuple().unwrap())
            .collect();
        for event in runtime.push_batch(&batch) {
            let slot = match event.query {
                q if q == fire_id => 0,
                q if q == spike_id => 1,
                q if q == echo_id => 2,
                _ => unreachable!(),
            };
            counts[slot] += 1;
        }
    }
    let secs = started.elapsed().as_secs_f64();

    println!("processed {events_total} events across 3 queries on 4 shards in {secs:.2}s");
    println!(
        "  throughput:    {:>10.0} tuples/sec",
        events_total as f64 / secs
    );
    println!("  fire matches:  {:>10}", counts[0]);
    println!("  spike matches: {:>10}", counts[1]);
    println!("  echo matches:  {:>10}", counts[2]);
    for (id, stats) in runtime.stats().per_query {
        println!(
            "  {}: {} positions seen, {} extends, {} live arena nodes",
            runtime.query_name(id),
            stats.positions,
            stats.extends,
            stats.arena_nodes
        );
    }
    assert!(counts.iter().all(|&c| c > 0), "every query should fire");
}

//! Kill-and-recover smoke over a real TCP socket — the CI gate for the
//! durability subsystem.
//!
//! The parent re-spawns itself as a durable server child (`--data-dir`
//! semantics via `ServeConfig::with_data_dir`), ingests a prefix of the
//! paper's stream Σ0, cuts a checkpoint mid-prefix so recovery needs
//! checkpoint *and* WAL replay, then SIGKILLs the server. A second
//! child on the same data directory must come back at the exact
//! acknowledged position, and the suffix must complete the joins whose
//! partial matches were opened before the crash: all three known Σ0
//! matches trigger at position 5, *after* the restart, off state that
//! only survived through the disk.
//!
//! ```sh
//! cargo run --release --example durable_serving
//! ```

use pcea::engine::{DurabilityConfig, FsyncPolicy, QueryId};
use pcea::prelude::*;
use pcea::serve::{Client, Frontend, ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CHILD_ENV: &str = "PCEA_DURABLE_SERVING_DATA_DIR";

fn main() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        return serve_child(&dir);
    }

    let dir = std::env::temp_dir().join(format!("pcea-durable-serving-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── Generation 1: fresh dir, prefix, checkpoint, SIGKILL ────────
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(&addr).expect("connect");
    let t = client.declare_relation("T", 1).expect("declare T");
    let s = client.declare_relation("S", 2).expect("declare S");
    let r = client.declare_relation("R", 2).expect("declare R");
    let q0 = client
        .submit_query(
            "q0",
            Frontend::Hcq,
            "Q0(x, y) <- T(x), S(x, y), R(x, y)",
            WindowPolicy::Count(100),
            None,
        )
        .expect("hierarchical query compiles server-side");
    let pat = client
        .submit_query(
            "t_then_r",
            Frontend::Pattern,
            "T(x) ; R(x, _)",
            WindowPolicy::Count(100),
            None,
        )
        .expect("pattern compiles server-side");
    let stream = sigma0_prefix(r, s, t);

    // Positions 0..3 land in a checkpoint, 3..5 only in the WAL — the
    // recovery below must stitch both together.
    let (start, end, dropped) = client.ingest(stream[..3].to_vec()).expect("ingest prefix");
    assert_eq!((start, end, dropped), (0, 3, 0));
    client.drain().expect("drain");
    let (position, epoch, bytes, full) = client.checkpoint().expect("checkpoint");
    assert_eq!(position, 3, "checkpoint fences at the acknowledged cut");
    assert!(full, "a chain's first checkpoint is full");
    println!("checkpoint: position={position} epoch={epoch} bytes={bytes}");
    let (_, end, _) = client.ingest(stream[3..5].to_vec()).expect("ingest tail");
    assert_eq!(end, 5);
    client.drain().expect("drain");
    let status = client.durability_status().expect("durability status");
    assert!(status.healthy, "WAL healthy before the crash");
    assert_eq!(status.last_checkpoint_position, Some(3));
    assert!(status.wal_records > 0, "the tail lives in the WAL");
    println!(
        "pre-crash: {} WAL records in {} segment(s), then kill -9",
        status.wal_records, status.wal_segments
    );
    child.kill().expect("SIGKILL the server");
    let _ = child.wait();
    drop(client);

    // ── Generation 2: same dir, recover, finish the joins ───────────
    let (mut child, addr) = spawn_server(&dir);
    let mut client = Client::connect(&addr).expect("reconnect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.next_position, 5,
        "every acknowledged position survived the kill"
    );
    assert_eq!(stats.queries, 2, "standing queries recovered from the log");
    let status = client.durability_status().expect("durability status");
    assert!(status.healthy);
    println!(
        "recovered: position={} queries={} (checkpoint@{:?} + WAL replay)",
        stats.next_position, stats.queries, status.last_checkpoint_position
    );
    // The serving schema is connection state, not engine state:
    // re-declaring in the same order yields the same relation ids the
    // recovered queries were compiled against.
    assert_eq!(client.declare_relation("T", 1).expect("redeclare T"), t);
    assert_eq!(client.declare_relation("S", 2).expect("redeclare S"), s);
    assert_eq!(client.declare_relation("R", 2).expect("redeclare R"), r);

    client
        .subscribe(None, 1 << 10, BackpressurePolicy::Block)
        .expect("subscribe");
    let (start, end, dropped) = client.ingest(stream[5..].to_vec()).expect("ingest suffix");
    assert_eq!((start, end, dropped), (5, stream.len() as u64, 0));
    client.drain().expect("drain");
    let mut q0_matches = 0usize;
    let mut pat_matches = 0usize;
    while let Some(ev) = client
        .next_event(Duration::from_millis(500))
        .expect("events")
    {
        assert!(ev.position >= 5, "all Σ0 matches trigger in the suffix");
        match ev.query {
            q if q == q0 => q0_matches += 1,
            q if q == pat => pat_matches += 1,
            other => panic!("event for unknown query {other:?}"),
        }
    }
    // Σ0's known counts — identical to the uninterrupted tcp_serving
    // run, but here every partial match crossed the crash on disk.
    assert_eq!(q0_matches, 2, "Q0 completes its two cross-crash joins");
    assert_eq!(pat_matches, 1, "T;R completes its cross-crash sequence");
    assert_eq!(QueryId(0), q0, "recovered ids stay dense");
    println!("cross-crash matches: q0={q0_matches}, t_then_r={pat_matches}");

    // A post-recovery checkpoint truncates the replayed log.
    let (position, ..) = client.checkpoint().expect("post-recovery checkpoint");
    assert_eq!(position, stream.len() as u64);
    client.shutdown_server().expect("shutdown handshake");
    let code = child.wait().expect("server exit");
    assert!(code.success(), "graceful shutdown after recovery");
    let _ = std::fs::remove_dir_all(&dir);
    println!("durable server killed, recovered and shut down cleanly");
}

/// Child mode: bind an ephemeral port durably over the given data
/// directory, announce it on stdout, serve until `Shutdown`.
fn serve_child(dir: &str) {
    let config = ServeConfig::from(RuntimeConfig::new(2).with_durability(DurabilityConfig {
        // Sync every record: an acknowledged request must survive
        // SIGKILL, which never flushes anything.
        fsync: FsyncPolicy::Always,
        ..DurabilityConfig::default()
    }))
    .with_data_dir(dir);
    let server = Server::bind("127.0.0.1:0", config).expect("bind durable server");
    println!("ADDR {}", server.local_addr());
    std::io::stdout().flush().expect("flush addr line");
    server.run_until_shutdown();
}

/// Re-spawn this example as a server child and wait for its address.
fn spawn_server(dir: &std::path::Path) -> (Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .env(CHILD_ENV, dir)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.expect("read child stdout");
        if let Some(addr) = line.strip_prefix("ADDR ") {
            // Keep draining stdout in the background so the child never
            // blocks on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            return (child, addr.to_string());
        }
    }
    let _ = child.wait();
    panic!("server child exited before announcing its address");
}

//! Stock-correlation monitoring: the introduction's motivating CER
//! scenario. An HCQ joins alert, buy and sell events per ticker inside a
//! sliding window; the engine keeps up with a high-velocity synthetic
//! feed while reporting only fresh matches.
//!
//! Run with: `cargo run --release --example stock_monitoring [events]`

use pcea::common::gen::StockGen;
use pcea::prelude::*;
use std::time::Instant;

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);

    // Schema + workload: BUY(ticker, price), SELL(ticker, price),
    // ALERT(ticker) over 8 tickers with random-walk prices.
    let mut schema = Schema::new();
    let mut feed = StockGen::build(&mut schema, 2024).expect("fresh schema");

    // The HCQ: an alerted ticker with a buy and a sell in the window.
    let query = parse_query(
        &mut schema,
        "Spike(x, p, q) <- ALERT(x), BUY(x, p), SELL(x, q)",
    )
    .expect("well-formed");
    let compiled = compile_hcq(&schema, &query).expect("Spike is hierarchical");
    println!("query    : {}", query.display(&schema));
    println!(
        "automaton: {} states / {} transitions",
        compiled.pcea.num_states(),
        compiled.pcea.transitions().len()
    );

    let window = 64u64;
    let mut engine = StreamingEvaluator::new(compiled.pcea, window);

    let mut matches = 0usize;
    let mut sample: Option<(u64, Valuation)> = None;
    let start = Instant::now();
    for _ in 0..events {
        let tuple = feed.next_tuple().expect("infinite feed");
        let pos = engine.next_position();
        engine.push_for_each(&tuple, |v| {
            matches += 1;
            if sample.is_none() {
                sample = Some((pos, v.clone()));
            }
        });
    }
    let elapsed = start.elapsed();

    println!("events   : {events}");
    println!("window   : {window}");
    println!("matches  : {matches}");
    println!(
        "throughput: {:.2} M events/s ({:.0} ns/event)",
        events as f64 / elapsed.as_secs_f64() / 1e6,
        elapsed.as_nanos() as f64 / events as f64
    );
    if let Some((pos, v)) = sample {
        println!(
            "first match at position {pos}: ALERT@{:?} BUY@{:?} SELL@{:?}",
            v.get(Label(0)),
            v.get(Label(1)),
            v.get(Label(2))
        );
    }
    let stats = engine.stats();
    println!(
        "engine   : {} arena nodes, {} index entries, {} collections",
        stats.arena_nodes, stats.index_entries, stats.collections
    );
}

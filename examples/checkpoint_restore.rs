//! Checkpoint/restore and query hot-swap, end to end.
//!
//! A runtime accumulates window state from a live stream; we snapshot
//! it mid-stream *without stopping producers*, serialize the snapshot
//! to bytes (as a crash-recovery file would), restore it into a runtime
//! with a different shard count, and replay the suffix — the completed
//! matches are identical to a run that never stopped. Then we hot-swap
//! a query's predicate with `Runtime::replace`, keeping its partial
//! matches across the swap.
//!
//! Run with: `cargo run --release --example checkpoint_restore`
//! (CI runs this as the snapshot round-trip smoke: every `assert!`
//! doubles as a format regression check.)

use pcea::engine::checkpoint::Snapshot;
use pcea::prelude::*;

fn main() {
    // ── A standing query over a stream of sensor-style readings ─────
    let mut schema = Schema::new();
    let query = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let compiled = compile_hcq(&schema, &query).unwrap();
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let stream = sigma0_prefix(r, s, t);

    let mut runtime = Runtime::new(2);
    let q0 = runtime
        .register(QuerySpec::new(
            "q0",
            compiled.pcea.clone(),
            WindowPolicy::Count(100),
        ))
        .unwrap();

    // Feed a prefix: partial matches (T and S tuples waiting for their
    // R) accumulate inside the shard evaluators.
    let prefix_events = runtime.push_batch(&stream[..4]);
    assert!(prefix_events.is_empty(), "no match completes this early");

    // ── Snapshot: one epoch block through the striped sequencer ─────
    // Producers keep running during a real snapshot; here the stream is
    // idle, but nothing in the API stops them (no stop-the-world).
    let snapshot = runtime.snapshot().unwrap();
    println!(
        "snapshot at position {} covering {} quer{} ({} origin shards)",
        snapshot.position(),
        snapshot.num_queries(),
        if snapshot.num_queries() == 1 {
            "y"
        } else {
            "ies"
        },
        snapshot.origin_shards(),
    );
    let stats = runtime.stats();
    assert_eq!(stats.snapshots.snapshots_taken, 1);
    assert_eq!(stats.snapshots.last_snapshot_pos, Some(4));

    // Serialize like a crash-recovery file would, then "crash".
    let bytes = snapshot.to_bytes().unwrap();
    println!("serialized snapshot: {} bytes", bytes.len());
    drop(runtime);

    // ── Restore into a DIFFERENT shard count, replay the suffix ─────
    let reloaded = Snapshot::from_bytes(&bytes).unwrap();
    let mut restored = Runtime::restore(&reloaded, 4).unwrap();
    assert_eq!(restored.next_position(), 4, "stamping resumes at the cut");
    assert_eq!(restored.query_name(q0), Some("q0"), "ids and names survive");

    let suffix_events = restored.push_batch(&stream[4..]);
    // The two matches of Q0 on σ0 complete at global position 5 — the
    // restored state carried the partial runs across the restart.
    assert_eq!(suffix_events.len(), 2);
    assert!(suffix_events
        .iter()
        .all(|e| e.query == q0 && e.position == 5));
    println!(
        "replayed suffix: {} matches completed at position 5, as uninterrupted",
        suffix_events.len()
    );

    // ── Hot-swap: recompile the query, keep its state ────────────────
    // The same query text recompiled (think: predicate tuning) takes
    // over the live window state atomically in stream order.
    let recompiled = compile_hcq(&schema, &query).unwrap();
    restored
        .replace(
            q0,
            QuerySpec::new("q0_v2", recompiled.pcea, WindowPolicy::Count(100)),
        )
        .unwrap();
    assert_eq!(restored.query_name(q0), Some("q0_v2"));
    // The swapped-in query still matches on fresh input (more than the
    // base two: the wide window also joins across the replayed batches).
    let again = restored.push_batch(&sigma0_prefix(r, s, t));
    assert!(again.len() >= 2);
    println!(
        "hot-swapped to q0_v2; it keeps matching: {} events",
        again.len()
    );

    println!("checkpoint round-trip OK");
}

//! Sensor-fusion fire detection — and a query *beyond* conjunctive
//! queries.
//!
//! Part 1 runs the fire-detection HCQ
//! `Fire(n,c,p) ← ALARM(n), TEMP(n,c), SMOKE(n,p)` through the compiler.
//!
//! Part 2 hand-builds a PCEA the compiler cannot produce from any CQ: it
//! adds *sequencing* (the ALARM must arrive after both readings — order
//! matters, which no CQ can state) and *value filters* from `Ulin`
//! (TEMP > 60, SMOKE > 350). This is the extra expressive power PCEA
//! brings on top of HCQ (Section 4's closing remark).
//!
//! Run with: `cargo run --release --example sensor_network [events]`

use pcea::common::gen::SensorGen;
use pcea::prelude::*;

fn main() {
    let events: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let mut schema = Schema::new();
    let mut net = SensorGen::build(&mut schema, 32, 7).expect("fresh schema");
    let window = 128u64;

    // ---- Part 1: the compiled HCQ (any order of events).
    let query = parse_query(
        &mut schema,
        "Fire(n, c, p) <- ALARM(n), TEMP(n, c), SMOKE(n, p)",
    )
    .expect("well-formed");
    let compiled = compile_hcq(&schema, &query).expect("hierarchical");
    let mut any_order = StreamingEvaluator::new(compiled.pcea, window);

    // ---- Part 2: sequenced + filtered PCEA, built by hand.
    let temp = net.temp;
    let smoke = net.smoke;
    let alarm = net.alarm;
    let (l_temp, l_smoke, l_alarm) = (Label(0), Label(1), Label(2));
    let mut b = PceaBuilder::new(3);
    let q_temp = b.add_state();
    let q_smoke = b.add_state();
    let q_fire = b.add_state();
    // Hot reading: TEMP(n, c) with c > 60.
    b.add_initial_transition(
        UnaryPredicate::Relation(temp).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Gt,
            value: Value::Int(60),
        }),
        LabelSet::singleton(l_temp),
        q_temp,
    );
    // Dense smoke: SMOKE(n, p) with p > 350.
    b.add_initial_transition(
        UnaryPredicate::Relation(smoke).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Gt,
            value: Value::Int(350),
        }),
        LabelSet::singleton(l_smoke),
        q_smoke,
    );
    // The ALARM arrives *after* both readings, on the same node — a
    // parallelized (two-source) transition with equality joins.
    b.add_transition(
        vec![
            (
                q_temp,
                EqPredicate::on_positions(temp, [0usize], alarm, [0usize]),
            ),
            (
                q_smoke,
                EqPredicate::on_positions(smoke, [0usize], alarm, [0usize]),
            ),
        ],
        UnaryPredicate::Relation(alarm),
        LabelSet::singleton(l_alarm),
        q_fire,
    );
    b.mark_final(q_fire);
    let mut sequenced = StreamingEvaluator::new(b.build(), window);

    // ---- Drive both engines off the same feed.
    let mut fires_any_order = 0usize;
    let mut fires_sequenced = 0usize;
    let mut example: Option<Valuation> = None;
    for _ in 0..events {
        let t = net.next_tuple().expect("infinite feed");
        fires_any_order += any_order.push_count(&t);
        sequenced.push_for_each(&t, |v| {
            fires_sequenced += 1;
            if example.is_none() {
                example = Some(v.clone());
            }
        });
    }

    println!("events              : {events} (window {window})");
    println!("HCQ matches         : {fires_any_order} (any order, no thresholds)");
    println!("sequenced + filtered: {fires_sequenced} (hot TEMP & dense SMOKE before ALARM)");
    assert!(
        fires_sequenced <= fires_any_order,
        "the sequenced/filtered pattern is strictly more selective"
    );
    if let Some(v) = example {
        println!(
            "example incident    : TEMP@{:?} SMOKE@{:?} ALARM@{:?}",
            v.get(l_temp),
            v.get(l_smoke),
            v.get(l_alarm)
        );
    }
}

//! Server ↔ client smoke over a real TCP socket — the CI gate for the
//! serving layer.
//!
//! Binds a server on an ephemeral loopback port, drives it from two
//! concurrent client connections — one standing query from each
//! front-end (HCQ rules and the pattern language) — ingests a batch,
//! and asserts the pushed matches and a checker-valid Prometheus
//! exposition. Every `assert!` is a serving-protocol regression check.
//!
//! ```sh
//! cargo run --release --example tcp_serving
//! ```

use pcea::prelude::*;
use pcea::serve::{Client, Frontend, ServeConfig, Server};
use std::time::Duration;

fn main() {
    // ── A server on an ephemeral port ───────────────────────────────
    let server = Server::bind("127.0.0.1:0", ServeConfig::from(RuntimeConfig::new(2)))
        .expect("bind ephemeral loopback port");
    println!("serving on {}", server.local_addr());

    // ── Two concurrent connections, one query per front-end ────────
    let mut alice = Client::connect(server.local_addr()).expect("connect");
    let mut bob = Client::connect(server.local_addr()).expect("connect");

    let hcq = alice
        .submit_query(
            "q0",
            Frontend::Hcq,
            "Q0(x, y) <- T(x), S(x, y), R(x, y)",
            WindowPolicy::Count(100),
            None,
        )
        .expect("hierarchical query compiles server-side");
    let pat = bob
        .submit_query(
            "t_then_r",
            Frontend::Pattern,
            "T(x) ; R(x, _)",
            WindowPolicy::Count(100),
            None,
        )
        .expect("pattern compiles server-side");
    println!("queries registered: q0={hcq:?}, t_then_r={pat:?}");

    alice
        .subscribe(Some(hcq), 1 << 10, BackpressurePolicy::Block)
        .expect("subscribe");
    bob.subscribe(Some(pat), 1 << 10, BackpressurePolicy::Block)
        .expect("subscribe");

    // ── The paper's example stream Σ0, ingested over the socket ─────
    let t = alice.declare_relation("T", 1).expect("T declared by q0");
    let s = alice.declare_relation("S", 2).expect("S declared by q0");
    let r = alice.declare_relation("R", 2).expect("R declared by q0");
    let stream = sigma0_prefix(r, s, t);
    let (start, end, dropped) = alice.ingest(stream.clone()).expect("ingest");
    assert_eq!((start, end, dropped), (0, stream.len() as u64, 0));
    alice.drain().expect("drain fence");
    bob.drain().expect("drain fence");

    // ── The known matches come back as pushed frames ────────────────
    let mut alice_matches = Vec::new();
    while let Some(ev) = alice
        .next_event(Duration::from_millis(500))
        .expect("events")
    {
        alice_matches.push(ev);
    }
    let mut bob_matches = Vec::new();
    while let Some(ev) = bob.next_event(Duration::from_millis(500)).expect("events") {
        bob_matches.push(ev);
    }
    // Q0 matches twice on Σ0's first 8 tuples, the sequential pattern
    // once (T(2)@1 before R(2,11)@5) — same counts as the in-process
    // quickstart.
    assert_eq!(alice_matches.len(), 2, "Q0 matches on Σ0");
    assert_eq!(bob_matches.len(), 1, "T;R matches on Σ0");
    assert!(alice_matches.iter().all(|e| e.query == hcq));
    assert!(bob_matches.iter().all(|e| e.query == pat));
    println!(
        "matches over the socket: q0={}, t_then_r={}",
        alice_matches.len(),
        bob_matches.len()
    );

    // ── Stats and checker-valid metrics over the wire ───────────────
    let stats = bob.stats().expect("stats");
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.next_position, stream.len() as u64);
    let text = alice.metrics_text().expect("metrics");
    validate_prometheus_text(&text).expect("Prometheus exposition is checker-valid");
    println!("metrics_text: {} bytes, checker-valid", text.len());

    // ── Graceful shutdown initiated by a client ─────────────────────
    alice.unsubscribe().expect("unsubscribe");
    bob.unsubscribe().expect("unsubscribe");
    alice.shutdown_server().expect("shutdown handshake");
    server.run_until_shutdown();
    println!("server drained and shut down cleanly");
}

//! The observability layer end to end: a bursty multi-producer
//! workload over the sharded runtime, then the full metrics export —
//! per-stage latency histograms (sequencer reserve, shard evaluation,
//! ingest→delivery e2e), the pipeline event journal, and the
//! Prometheus text exposition.
//!
//! Run with `cargo run --release --example observability`.
//!
//! CI runs this as a smoke test: it *asserts* that the key histograms
//! saw samples with non-zero percentiles and that `metrics_text()`
//! passes `validate_prometheus_text`, so a broken exporter or a stage
//! that stopped recording fails the build.

use pcea::prelude::*;
use std::time::Duration;

fn main() {
    let mut schema = Schema::new();
    let fire = parse_query(
        &mut schema,
        "Fire(n, c, p) <- ALARM(n), TEMP(n, c), SMOKE(n, p)",
    )
    .unwrap();
    let fire_pcea = compile_hcq(&schema, &fire).unwrap().pcea;
    let spike = pattern_to_pcea(&mut schema, "TEMP(n, _) ; SMOKE(n, _)")
        .unwrap()
        .pcea;

    // Thin the e2e ingest→delivery span to every 8th delivered match —
    // the knob a high-fan-out deployment would turn. Every other
    // histogram records unconditionally (one relaxed atomic add).
    let mut runtime = Runtime::new(RuntimeConfig::new(4).with_e2e_sample_every(8));
    runtime
        .register(
            QuerySpec::new("fire", fire_pcea, WindowPolicy::Count(128))
                .with_partition(Partition::ByKey { pos: 0 }),
        )
        .unwrap();
    runtime
        .register(QuerySpec::new("spike", spike, WindowPolicy::Count(32)))
        .unwrap();

    // Bursty traffic: three producers, each pushing bursts of batches
    // with idle gaps, concurrently with a consumer draining matches.
    let mut feed = SensorGen::build(&mut schema, 48, 7).unwrap();
    let stream: Vec<Tuple> = (0..60_000).map(|_| feed.next_tuple().unwrap()).collect();
    let subscription = runtime.subscribe(SubscriptionFilter::All);
    let consumer = std::thread::spawn(move || {
        let mut n = 0u64;
        while subscription.recv_timeout(Duration::from_secs(5)).is_some() {
            n += 1;
        }
        n
    });
    let producers: Vec<_> = stream
        .chunks(20_000)
        .map(|slice| {
            let handle = runtime.ingest_handle();
            let slice = slice.to_vec();
            std::thread::spawn(move || {
                for (b, burst) in slice.chunks(2_000).enumerate() {
                    for batch in burst.chunks(250) {
                        handle.push_batch(batch).unwrap();
                    }
                    // The idle gap between bursts: queues drain, the
                    // next burst slams in cold.
                    std::thread::sleep(Duration::from_millis(2 + (b as u64 % 3)));
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    runtime.drain();

    // --- The export surface ---------------------------------------
    let text = runtime.metrics_text();
    println!("{text}");

    // The journal: structured, position-stamped pipeline events.
    let events = runtime.events();
    println!(
        "# journal: {} events drained, {} overwritten",
        events.len(),
        runtime.events_overwritten()
    );
    for e in events.iter().take(5) {
        println!("#   [{}] {:?}", e.seq, e.item);
    }

    // --- Smoke assertions (CI) ------------------------------------
    validate_prometheus_text(&text).expect("metrics_text must pass the format checker");
    let snap = runtime.metrics_snapshot();
    let must_have = ["cer_seq_reserve_nanos", "cer_e2e_nanos"];
    for name in must_have {
        let Some(m) = snap.get(name, &[]) else {
            panic!("{name} missing from the snapshot");
        };
        let MetricValue::Histogram(h) = &m.value else {
            panic!("{name} is not a histogram");
        };
        assert!(h.count() > 0, "{name} recorded no samples");
        assert!(h.p50() > 0 && h.p99() >= h.p50(), "{name} percentiles");
        println!(
            "# {name}: n={} p50={}ns p99={}ns max={}ns",
            h.count(),
            h.p50(),
            h.p99(),
            h.max()
        );
    }
    // Shard-eval histograms are per shard; merge them (bucket-count
    // addition, order-independent) and check the merged distribution.
    let mut eval = HistogramSnapshot::default();
    for i in 0..4 {
        let shard = i.to_string();
        if let Some(m) = snap.get("cer_shard_eval_nanos", &[("shard", shard.as_str())]) {
            if let MetricValue::Histogram(h) = &m.value {
                eval.merge(h);
            }
        }
    }
    assert!(
        eval.count() > 0 && eval.p50() > 0 && eval.p99() >= eval.p50(),
        "merged shard-eval histogram"
    );
    println!(
        "# cer_shard_eval_nanos (merged): n={} p50={}ns p99={}ns",
        eval.count(),
        eval.p50(),
        eval.p99()
    );

    let delivered = {
        drop(runtime); // closes the subscription, unblocking the consumer
        consumer.join().unwrap()
    };
    println!("# consumer drained {delivered} match events");
}

//! Quickstart: parse a hierarchical conjunctive query, compile it to a
//! PCEA, and evaluate it over the paper's example stream `S0` under a
//! sliding window.
//!
//! Run with: `cargo run --example quickstart`

use pcea::prelude::*;

fn main() {
    // 1. Declare the query. Q0 is the paper's running example:
    //    "a T, an S and an R agreeing on x (and on y for S/R)".
    let mut schema = Schema::new();
    let query =
        parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").expect("well-formed query");
    println!("query      : {}", query.display(&schema));

    // 2. Compile to a Parallelized Complex Event Automaton (Theorem 4.1).
    let compiled = compile_hcq(&schema, &query).expect("Q0 is hierarchical");
    println!(
        "compiled   : {} states, {} transitions, size {}",
        compiled.pcea.num_states(),
        compiled.pcea.transitions().len(),
        compiled.pcea.size()
    );

    // 3. Stream the paper's S0 through the engine with window w = 5.
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let mut engine = StreamingEvaluator::new(compiled.pcea, 5);

    for tuple in sigma0_prefix(r, s, t) {
        let pos = engine.next_position();
        let outputs = engine.push_collect(&tuple);
        println!("pos {pos}: read {}", tuple.display(&schema));
        for v in outputs {
            // Labels are atom identifiers: 0 ↦ T, 1 ↦ S, 2 ↦ R.
            println!(
                "  match: T@{:?} S@{:?} R@{:?}",
                v.get(Label(0)),
                v.get(Label(1)),
                v.get(Label(2))
            );
        }
    }

    let stats = engine.stats();
    println!(
        "done       : {} positions, {} DS nodes, {} index entries",
        stats.positions, stats.arena_nodes, stats.index_entries
    );
}

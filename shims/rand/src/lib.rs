//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 that
//! this workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` on integer and float ranges).
//!
//! The workspace builds offline, so the real crates-io `rand` cannot be
//! fetched; the generators only need a fast deterministic PRNG, which
//! this shim provides via splitmix64. Streams produced by the workload
//! generators are deterministic given a seed, exactly as before — the
//! concrete sequences differ from upstream `rand`, which no test relies
//! on.

use std::ops::Range;

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface, mirroring the slice of `rand::Rng` in use.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// A range that can be sampled, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic PRNG (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                // Avoid the all-zero fixpoint and decorrelate tiny seeds.
                state: state ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y: usize = r.gen_range(0usize..3);
            assert!(y < 3);
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0u8..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Minimal, dependency-free stand-in for the slice of `criterion` this
//! workspace's benches use.
//!
//! The workspace builds offline, so the real crates-io `criterion`
//! cannot be fetched. The shim keeps the bench *sources* unchanged —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `black_box` —
//! and replaces the statistics engine with a simple calibrated
//! wall-clock loop. Results are printed as human-readable lines **and**
//! machine-readable JSON lines (prefix `BENCH_JSON`), one per
//! benchmark:
//!
//! ```json
//! {"bench":"group/name","mean_ns":123.4,"iters":1000,"p95_ns":140.0,"p99_ns":210.0,"elems_per_sec":8.1e6}
//! ```
//!
//! The mean comes from the batched measuring loop (timer overhead
//! amortized away). `p95_ns`/`p99_ns` come from a *separate* sampling
//! phase of individually timed iterations bucketed into a
//! [`cer_obs::Histogram`], so the percentiles never perturb the mean;
//! for nanosecond-scale bodies they include the per-iteration timer
//! overhead, which is why they are trend data, not gated numbers
//! (see `bench_gate`).
//!
//! Environment knobs: `CRITERION_BUDGET_MS` (per-benchmark measuring
//! budget, default 300).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name and/or parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
    p95_ns: u64,
    p99_ns: u64,
}

impl Bencher {
    /// Measure `f`: warm up once, then run as many iterations as fit the
    /// budget, recording the mean wall-clock time per iteration —
    /// followed by a shorter phase of individually timed iterations
    /// feeding a log-bucketed latency histogram for `p95`/`p99`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget = budget();
        // Calibrate: time one iteration to choose a batch size.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
        // Percentile phase: a tenth of the budget of individually
        // timed iterations (at least 8, at most 100 000), bucketed
        // into the shared observability histogram. Kept apart from the
        // batched loop above so the extra `Instant` pair per iteration
        // never inflates the reported mean.
        let hist = cer_obs::Histogram::new();
        let lat_budget = budget / 10;
        let lat_start = Instant::now();
        let mut samples = 0u64;
        while (samples < 8 || lat_start.elapsed() < lat_budget) && samples < 100_000 {
            let t = Instant::now();
            black_box(f());
            hist.record_duration(t.elapsed());
            samples += 1;
        }
        let snap = hist.snapshot();
        self.p95_ns = snap.p95();
        self.p99_ns = snap.p99();
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let elems = match throughput {
        Some(Throughput::Elements(n)) => Some(n as f64 * 1e9 / b.mean_ns),
        _ => None,
    };
    match elems {
        Some(eps) => {
            println!(
                "bench {full}: {:.1} ns/iter ({} iters, p95 {} ns, p99 {} ns, {:.3e} elems/s)",
                b.mean_ns, b.iters, b.p95_ns, b.p99_ns, eps
            );
            println!(
                "BENCH_JSON {{\"bench\":\"{full}\",\"mean_ns\":{:.1},\"iters\":{},\"p95_ns\":{},\"p99_ns\":{},\"elems_per_sec\":{:.1}}}",
                b.mean_ns, b.iters, b.p95_ns, b.p99_ns, eps
            );
        }
        None => {
            println!(
                "bench {full}: {:.1} ns/iter ({} iters, p95 {} ns, p99 {} ns)",
                b.mean_ns, b.iters, b.p95_ns, b.p99_ns
            );
            println!(
                "BENCH_JSON {{\"bench\":\"{full}\",\"mean_ns\":{:.1},\"iters\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                b.mean_ns, b.iters, b.p95_ns, b.p99_ns
            );
        }
    }
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        f(&mut b);
        report(None, &id.id, &b, None);
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's loop is budget-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        f(&mut b);
        report(Some(&self.name), &id.id, &b, self.throughput);
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            p95_ns: 0,
            p99_ns: 0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.id, &b, self.throughput);
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

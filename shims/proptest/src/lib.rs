//! Minimal, dependency-free stand-in for the slice of `proptest` that
//! this workspace's property tests use.
//!
//! The workspace builds offline, so the real crates-io `proptest` cannot
//! be fetched. This shim keeps the same *testing model* — strategies
//! compose into random value generators, `proptest!` runs a body over
//! `ProptestConfig::cases` deterministic random cases — but does **not**
//! implement shrinking: a failing case panics with the case index so it
//! can be replayed (generation is seeded from the test name, so failures
//! are reproducible run-to-run).
//!
//! Provided surface: `Strategy` (with `prop_map`, `new_tree`, `boxed`),
//! ranges and tuples as strategies, `proptest::collection::vec`,
//! `any::<T>()`, `Just`, `prop_oneof!`, `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, and the
//! `test_runner::{Config, TestRunner, TestRng, RngAlgorithm}` types.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Run a property over `config.cases` deterministic random cases.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     // In a test module this would carry `#[test]`.
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::from_u64(
                    __seed ^ (u64::from(__case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let __run = || {
                    $( let $arg = $crate::strategy::Strategy::pick(&{ $strat }, &mut __rng); )*
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; re-run reproduces it)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Assert inside a property; panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

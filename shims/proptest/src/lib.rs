//! Minimal, dependency-free stand-in for the slice of `proptest` that
//! this workspace's property tests use.
//!
//! The workspace builds offline, so the real crates-io `proptest` cannot
//! be fetched. This shim keeps the same *testing model* — strategies
//! compose into random value generators, `proptest!` runs a body over
//! `ProptestConfig::cases` deterministic random cases — and implements
//! **minimal shrinking**: when a case fails, the macro greedily re-tests
//! simpler candidates from the value's provenance tree
//! ([`strategy::Strategy::pick_shrinkable`]: integer ranges toward
//! their start, vectors by removing elements, tuples componentwise,
//! `prop_map` by shrinking the pre-map input and re-mapping,
//! `prop_oneof!` within the arm that produced the value) within a
//! `max_shrink_iters` budget, reports the near-minimal failing
//! arguments, and replays them so the original assertion message
//! propagates. Only `any`/`Just` (no natural order) do not shrink;
//! generation is seeded from the test name, so failures stay
//! reproducible run-to-run.
//!
//! Provided surface: `Strategy` (with `prop_map`, `new_tree`, `boxed`,
//! `shrink`), ranges and tuples as strategies,
//! `proptest::collection::vec`, `any::<T>()`, `Just`, `prop_oneof!`,
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//! and the `test_runner::{Config, TestRunner, TestRng, RngAlgorithm}`
//! types.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for a type, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Run a property over `config.cases` deterministic random cases.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     // In a test module this would carry `#[test]`.
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        #[allow(clippy::clone_on_copy, clippy::redundant_clone)]
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            // Pins a checker closure's argument tuple to the snapshot
            // type, so the body type-checks before its first call.
            fn __constrain<T, F: Fn(T) -> bool>(_: &T, f: F) -> F {
                f
            }
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::from_u64(
                    __seed ^ (u64::from(__case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                // Each argument keeps its strategy next to its current
                // value's provenance tree; `RefCell` lets the
                // per-argument shrink loop rebind one slot while the
                // snapshot closure below reads them all.
                $(
                    let $arg = ::std::cell::RefCell::new(
                        $crate::strategy::Slot::sample({ $strat }, &mut __rng),
                    );
                )*
                let __snapshot =
                    || ($( ::std::clone::Clone::clone(&$arg.borrow().tree.value), )*);
                let __first = __snapshot();
                // Run the body on a tuple of argument values; true =
                // the case failed.
                let __fails = __constrain(&__first, |($( $arg, )*)| -> bool {
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }))
                    .is_err()
                });
                if !__fails(__first) {
                    continue;
                }
                eprintln!(
                    "proptest case {}/{} of `{}` failed (deterministic; re-run reproduces it); shrinking…",
                    __case + 1,
                    __config.cases,
                    stringify!($name),
                );
                // Greedy minimal shrinking: walk the arguments, adopt
                // any simpler candidate that still fails, restart that
                // argument's candidates, repeat to fixpoint or budget.
                // The default panic hook is silenced meanwhile so the
                // candidate re-runs do not spam stderr; the guard
                // serializes the process-global hook swap across
                // concurrently shrinking properties.
                let __hook_guard = $crate::test_runner::shrink_hook_guard();
                let __prev_hook = ::std::panic::take_hook();
                ::std::panic::set_hook(Box::new(|_| {}));
                let mut __iters: u32 = 0;
                let mut __progress = true;
                while __progress && __iters < __config.max_shrink_iters {
                    __progress = false;
                    $(
                        loop {
                            let mut __adopted = false;
                            let __cands = $arg.borrow().candidates();
                            for __cand in __cands {
                                if __iters >= __config.max_shrink_iters {
                                    break;
                                }
                                __iters += 1;
                                let __old = ::std::mem::replace(
                                    &mut $arg.borrow_mut().tree,
                                    __cand,
                                );
                                if __fails(__snapshot()) {
                                    __adopted = true;
                                    __progress = true;
                                    break;
                                }
                                $arg.borrow_mut().tree = __old;
                            }
                            if !__adopted || __iters >= __config.max_shrink_iters {
                                break;
                            }
                        }
                    )*
                }
                ::std::panic::set_hook(__prev_hook);
                ::std::mem::drop(__hook_guard);
                eprintln!(
                    "proptest: near-minimal failing case of `{}` after {} shrink run(s): {:?}",
                    stringify!($name),
                    __iters,
                    __snapshot(),
                );
                // Replay the minimal case uncaught so the original
                // assertion message is what the harness reports.
                {
                    let ($( $arg, )*) = __snapshot();
                    $body
                }
                panic!(
                    "proptest: `{}` failed during shrinking but passed on replay (flaky body?)",
                    stringify!($name),
                );
            }
        }
    )*};
}

/// Assert inside a property; panics on failure (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

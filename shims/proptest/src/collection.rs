//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

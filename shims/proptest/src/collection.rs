//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{Shrinkable, Strategy};
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy of [`vec`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone + 'static,
{
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }

    /// The shared vector policy (`crate::strategy::vec_candidates`):
    /// structural candidates first, then element shrinks in place.
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        crate::strategy::vec_candidates(v, self.size.start, |x| self.element.shrink(x))
    }

    /// Element provenance is kept per slot, so structural shrinking
    /// (removals) composes with element shrinks that run through
    /// arbitrary combinators (`prop_map`, `prop_oneof!`).
    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Vec<S::Value>>
    where
        Self::Value: 'static,
    {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        let elems: Vec<Shrinkable<S::Value>> = (0..len)
            .map(|_| self.element.pick_shrinkable(rng))
            .collect();
        Shrinkable::vec(elems, self.size.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_shrink_respects_min_size_and_shrinks_elements() {
        let s = vec(0i64..100, 1..10);
        let v = vec![50i64, 3, 7];
        let cands = s.shrink(&v);
        // Structural candidates never go below the minimum length.
        assert!(cands.iter().all(|c| !c.is_empty()));
        assert!(cands.contains(&vec![50]), "drop to min");
        assert!(cands.contains(&vec![3, 7]), "single removal");
        assert!(cands.contains(&vec![0, 3, 7]), "element shrink");
        // At the minimum length only element shrinks remain.
        let at_min = s.shrink(&vec![5]);
        assert!(at_min.iter().all(|c| c.len() == 1));
        assert!(!at_min.is_empty());
        // Fully minimal: nothing to offer.
        assert!(s.shrink(&vec![0]).is_empty());
    }
}

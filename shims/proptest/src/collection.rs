//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec`s with a length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// Strategy of [`vec`](fn@vec).
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.pick(rng)).collect()
    }

    /// Structural first (drop to the minimum length, halve, remove
    /// single elements), then shrink surviving elements in place.
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let min = self.size.start;
        let mut out = Vec::new();
        if v.len() > min {
            out.push(v[..min].to_vec());
            let half = min.max(v.len() / 2);
            if half < v.len() && half > min {
                out.push(v[..half].to_vec());
            }
            for idx in 0..v.len().min(8) {
                let mut w = v.clone();
                w.remove(idx);
                out.push(w);
            }
            if v.len() > 8 {
                let mut w = v.clone();
                w.pop();
                out.push(w);
            }
        }
        for idx in 0..v.len().min(8) {
            for c in self.element.shrink(&v[idx]).into_iter().take(3) {
                let mut w = v.clone();
                w[idx] = c;
                out.push(w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_shrink_respects_min_size_and_shrinks_elements() {
        let s = vec(0i64..100, 1..10);
        let v = vec![50i64, 3, 7];
        let cands = s.shrink(&v);
        // Structural candidates never go below the minimum length.
        assert!(cands.iter().all(|c| !c.is_empty()));
        assert!(cands.contains(&vec![50]), "drop to min");
        assert!(cands.contains(&vec![3, 7]), "single removal");
        assert!(cands.contains(&vec![0, 3, 7]), "element shrink");
        // At the minimum length only element shrinks remain.
        let at_min = s.shrink(&vec![5]);
        assert!(at_min.iter().all(|c| c.len() == 1));
        assert!(!at_min.is_empty());
        // Fully minimal: nothing to offer.
        assert!(s.shrink(&vec![0]).is_empty());
    }
}

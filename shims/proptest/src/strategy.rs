//! Strategies: composable random value generators.
//!
//! The real proptest's `Strategy` produces shrinkable `ValueTree`s; this
//! shim's strategies produce plain values (`pick`) and wrap them in a
//! no-shrink [`SampleTree`] where the `new_tree` API is exercised.
//! Shrinking is driven by [`Shrinkable`] *provenance trees*
//! ([`Strategy::pick_shrinkable`]): each sampled value carries enough
//! of its generation history to offer simpler candidates — integer
//! ranges shrink toward their start, vectors by removing elements and
//! shrinking survivors, tuples componentwise, `prop_map` by shrinking
//! the *pre-map input* and re-mapping, and `prop_oneof!` within the
//! arm that produced the value. The `proptest!` macro greedily
//! re-tests candidates to report near-minimal failing cases.
//! ([`Strategy::shrink`] remains as the provenance-free value-level
//! shrinker — ranges, vectors and tuples keep it for direct use and
//! tests — sharing the vector policy via the crate-private
//! `vec_candidates` helper.)

use crate::test_runner::{TestRng, TestRunner};
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A sampled value plus its shrink provenance: which strategy (or
/// which pre-combinator inputs) produced it, so candidates can be
/// derived even through lossy combinators like `prop_map`.
pub struct Shrinkable<V> {
    /// The concrete value currently bound.
    pub value: V,
    node: Rc<dyn ShrinkNode<V>>,
}

impl<V: Clone> Clone for Shrinkable<V> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            node: self.node.clone(),
        }
    }
}

impl<V> Shrinkable<V> {
    /// A value with no shrink provenance (never shrinks).
    pub fn leaf(value: V) -> Self
    where
        V: 'static,
    {
        Shrinkable {
            value,
            node: Rc::new(LeafNode),
        }
    }

    /// Candidate simpler values, most aggressive first. Each candidate
    /// carries its own provenance, so adopted candidates keep
    /// shrinking.
    pub fn candidates(&self) -> Vec<Shrinkable<V>> {
        self.node.children(&self.value)
    }
}

impl<V: Clone + 'static> Shrinkable<Vec<V>> {
    /// A vector built from per-element provenance trees
    /// ([`crate::collection::vec`]), shrinking structurally and
    /// elementwise with `min` as the length floor.
    pub(crate) fn vec(elems: Vec<Shrinkable<V>>, min: usize) -> Self {
        Shrinkable {
            value: elems.iter().map(|e| e.value.clone()).collect(),
            node: Rc::new(VecNode { elems, min }),
        }
    }
}

/// Provenance behind one [`Shrinkable`] value.
trait ShrinkNode<V> {
    /// Simpler candidates for the current value `v`.
    fn children(&self, v: &V) -> Vec<Shrinkable<V>>;
}

/// No provenance: nothing to offer.
struct LeafNode;

impl<V: 'static> ShrinkNode<V> for LeafNode {
    fn children(&self, _v: &V) -> Vec<Shrinkable<V>> {
        Vec::new()
    }
}

/// The shared vector-shrink policy, used by both the value-level
/// [`crate::collection::VecStrategy`]`::shrink` and the
/// provenance-level [`VecNode`] (one definition, so the two paths
/// cannot drift): structural candidates first — drop to the minimum
/// length, halve, remove single elements (first 8), pop when long —
/// then up to 3 `shrink_elem` candidates for each of the first 8
/// surviving elements.
pub(crate) fn vec_candidates<T: Clone>(
    v: &[T],
    min: usize,
    shrink_elem: impl Fn(&T) -> Vec<T>,
) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.len() > min {
        out.push(v[..min].to_vec());
        let half = min.max(v.len() / 2);
        if half < v.len() && half > min {
            out.push(v[..half].to_vec());
        }
        for idx in 0..v.len().min(8) {
            let mut w = v.to_vec();
            w.remove(idx);
            out.push(w);
        }
        if v.len() > 8 {
            let mut w = v.to_vec();
            w.pop();
            out.push(w);
        }
    }
    for idx in 0..v.len().min(8) {
        for c in shrink_elem(&v[idx]).into_iter().take(3) {
            let mut w = v.to_vec();
            w[idx] = c;
            out.push(w);
        }
    }
    out
}

/// The shared, by-reference form of a `prop_map` closure.
type MapFn<I, O> = Rc<dyn Fn(&I) -> O>;

/// Provenance of [`Strategy::prop_map`]: the pre-map input's tree plus
/// the mapping, so shrinking happens on the *input* and re-maps.
struct MapNode<I, O> {
    input: Shrinkable<I>,
    f: MapFn<I, O>,
}

impl<I: Clone + 'static, O: 'static> ShrinkNode<O> for MapNode<I, O> {
    fn children(&self, _v: &O) -> Vec<Shrinkable<O>> {
        self.input
            .candidates()
            .into_iter()
            .map(|input| Shrinkable {
                value: (self.f)(&input.value),
                node: Rc::new(MapNode {
                    input,
                    f: self.f.clone(),
                }),
            })
            .collect()
    }
}

/// Provenance of [`crate::collection::vec`]: the element trees, so the
/// structural candidates (removals) compose with element-level shrinks
/// that themselves run through arbitrary combinators.
pub(crate) struct VecNode<V> {
    pub(crate) elems: Vec<Shrinkable<V>>,
    pub(crate) min: usize,
}

impl<V: Clone + 'static> ShrinkNode<Vec<V>> for VecNode<V> {
    fn children(&self, _v: &Vec<V>) -> Vec<Shrinkable<Vec<V>>> {
        vec_candidates(&self.elems, self.min, |e| e.candidates())
            .into_iter()
            .map(|elems| Shrinkable::vec(elems, self.min))
            .collect()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simpler values for `v`, most aggressive first. The
    /// default has nothing to offer; strategies with a natural value
    /// order (ranges) override it. Combinators (vectors, tuples,
    /// `prop_map`, `prop_oneof!`) shrink through
    /// [`pick_shrinkable`](Self::pick_shrinkable) provenance instead,
    /// since their candidates depend on how the value was generated.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Draw one value together with its shrink provenance. The default
    /// wraps [`pick`](Self::pick) in a non-shrinking leaf; strategies
    /// with candidates override it — directly (ranges) or by composing
    /// their inputs' provenance (vectors, tuples, `prop_map`,
    /// `prop_oneof!` arms).
    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        Shrinkable::leaf(self.pick(rng))
    }

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a (non-shrinking) value tree, mirroring the real API.
    #[allow(clippy::type_complexity)]
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(SampleTree {
            value: self.pick(runner.rng()),
        })
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }

    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        (**self).pick_shrinkable(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }

    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self::Value: 'static,
    {
        (**self).pick_shrinkable(rng)
    }
}

/// A generated value plus its (here: trivial) shrink state.
pub trait ValueTree {
    /// The carried type.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;

    /// Try to shrink; the shim never shrinks.
    fn simplify(&mut self) -> bool {
        false
    }

    /// Undo a shrink; the shim never shrinks.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The shim's only tree shape: a single sampled value.
#[derive(Clone, Debug)]
pub struct SampleTree<V> {
    pub(crate) value: V,
}

impl<V: Clone> ValueTree for SampleTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.value.clone()
    }
}

/// Always produce one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone + 'static,
    F: Fn(S::Value) -> O + Clone + 'static,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }

    /// Shrinks *through* the map: the provenance keeps the pre-map
    /// input's tree, shrinks it, and re-applies the mapping.
    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<O>
    where
        O: 'static,
    {
        let input = self.inner.pick_shrinkable(rng);
        let f = self.f.clone();
        let f: MapFn<S::Value, O> = Rc::new(move |i| f(i.clone()));
        Shrinkable {
            value: f(&input.value),
            node: Rc::new(MapNode { input, f }),
        }
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn pick(&self, rng: &mut TestRng) -> V {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].pick(rng)
    }

    /// Shrinks *within the arm* that produced the value: the chosen
    /// arm's provenance travels with the sample.
    fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<V>
    where
        V: 'static,
    {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].pick_shrinkable(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[inline]
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }

            /// Toward the range start: the start itself, the midpoint
            /// (binary descent), and the predecessor (final single
            /// steps), so greedy re-testing converges to the smallest
            /// failing value.
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let (start, v128) = (self.start as i128, *v as i128);
                if v128 <= start {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let mid = start + (v128 - start) / 2;
                if mid != start && mid != v128 {
                    out.push(mid as $t);
                }
                out.push((v128 - 1) as $t);
                out.dedup();
                out
            }

            /// True bracketing binary search, unlike the stateless
            /// [`shrink`](Strategy::shrink): each candidate's
            /// provenance records that every smaller candidate before
            /// it *passed* (the greedy loop tries them in order), so
            /// the next round bisects the remaining bracket. Converges
            /// to the exact failing boundary in `O(log²)` re-tests —
            /// the stateless `[start, mid, pred]` list degrades to a
            /// linear walk once the midpoint passes.
            fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<$t> {
                /// `floor` = smallest value not yet known to pass.
                struct Node {
                    floor: i128,
                }
                impl ShrinkNode<$t> for Node {
                    fn children(&self, v: &$t) -> Vec<Shrinkable<$t>> {
                        let v128 = *v as i128;
                        if v128 <= self.floor {
                            return Vec::new();
                        }
                        let mid = self.floor + (v128 - self.floor) / 2;
                        // (candidate, floor if all earlier ones passed)
                        let mut ladder = vec![(self.floor, self.floor)];
                        if mid > self.floor {
                            ladder.push((mid, self.floor + 1));
                        }
                        if v128 - 1 > mid {
                            ladder.push((v128 - 1, mid + 1));
                        }
                        ladder
                            .into_iter()
                            .map(|(value, floor)| Shrinkable {
                                value: value as $t,
                                node: Rc::new(Node { floor }),
                            })
                            .collect()
                    }
                }
                let v = self.pick(rng);
                Shrinkable {
                    value: v,
                    node: Rc::new(Node {
                        floor: self.start as i128,
                    }),
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Provenance of tuple strategies: the component trees. The payload is
/// the tuple of component [`Shrinkable`]s; per-arity impls live in
/// [`impl_tuple_strategy`].
struct TupleNode<T>(T);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Clone + 'static),+> TupleNode<($(Shrinkable<$s>,)+)> {
            /// The value tuple mirrored by the component trees.
            fn value(trees: &($(Shrinkable<$s>,)+)) -> ($($s,)+) {
                ($(trees.$idx.value.clone(),)+)
            }
        }

        impl<$($s: Clone + 'static),+> ShrinkNode<($($s,)+)>
            for TupleNode<($(Shrinkable<$s>,)+)>
        {
            /// Componentwise: shrink one slot at a time (through its
            /// own provenance), holding the others fixed.
            fn children(&self, _v: &($($s,)+)) -> Vec<Shrinkable<($($s,)+)>> {
                let mut out = Vec::new();
                $(
                    for c in (self.0).$idx.candidates().into_iter().take(4) {
                        let mut trees = self.0.clone();
                        trees.$idx = c;
                        out.push(Shrinkable {
                            value: Self::value(&trees),
                            node: Rc::new(TupleNode(trees)),
                        });
                    }
                )+
                out
            }
        }

        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone + 'static,)+
        {
            type Value = ($($s::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }

            /// Componentwise: shrink one slot at a time, holding the
            /// others fixed.
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&v.$idx).into_iter().take(4) {
                        let mut w = v.clone();
                        w.$idx = c;
                        out.push(w);
                    }
                )+
                out
            }

            fn pick_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
            where
                Self::Value: 'static,
            {
                let trees = ($(self.$idx.pick_shrinkable(rng),)+);
                Shrinkable {
                    value: TupleNode::<($(Shrinkable<$s::Value>,)+)>::value(&trees),
                    node: Rc::new(TupleNode(trees)),
                }
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// One `proptest!` argument: its strategy paired with the currently
/// bound value's provenance tree — the unit of the macro's greedy
/// shrink loop. Adopting a candidate replaces the whole tree, so the
/// next round shrinks from the adopted value's own provenance (which
/// is what lets shrinking continue *through* `prop_map`/`prop_oneof!`).
pub struct Slot<S: Strategy> {
    /// The generating strategy.
    pub strategy: S,
    /// The value currently bound to the argument, with provenance.
    pub tree: Shrinkable<S::Value>,
}

impl<S: Strategy> Slot<S>
where
    S::Value: 'static,
{
    /// Draw the initial value.
    pub fn sample(strategy: S, rng: &mut TestRng) -> Self {
        let tree = strategy.pick_shrinkable(rng);
        Slot { strategy, tree }
    }

    /// Candidate simpler values for the current binding.
    pub fn candidates(&self) -> Vec<Shrinkable<S::Value>> {
        self.tree.candidates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_shrinks_toward_start() {
        let s = 10i64..1000;
        assert_eq!(s.shrink(&10), Vec::<i64>::new(), "already minimal");
        let c = s.shrink(&500);
        assert_eq!(c, vec![10, 255, 499]);
        // Greedy descent reaches the start in logarithmically many
        // adopted steps.
        let mut v = 999i64;
        let mut adopted = 0;
        while let Some(&next) = s.shrink(&v).first() {
            v = next;
            adopted += 1;
            assert!(adopted < 64, "must converge");
        }
        assert_eq!(v, 10);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (0u8..10, 5i64..50);
        let cands = s.shrink(&(4, 40));
        assert!(cands.contains(&(0, 40)), "first slot toward start");
        assert!(cands.contains(&(4, 5)), "second slot toward start");
        assert!(cands.iter().all(|&(a, b)| (a, b) != (4, 40)));
    }
}

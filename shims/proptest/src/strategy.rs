//! Strategies: composable random value generators.
//!
//! The real proptest's `Strategy` produces shrinkable `ValueTree`s; this
//! shim's strategies produce plain values (`pick`) and wrap them in a
//! no-shrink [`SampleTree`] where the `new_tree` API is exercised.
//! Shrinking lives on the strategy itself instead
//! ([`Strategy::shrink`]): integer ranges shrink toward their start,
//! vectors by removing elements and shrinking survivors, tuples
//! componentwise — enough for the `proptest!` macro to report
//! near-minimal failing cases.

use crate::test_runner::{TestRng, TestRunner};
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simpler values for `v`, most aggressive first. The
    /// default has nothing to offer; strategies with a natural order
    /// (ranges, vectors, tuples) override it. The `proptest!` macro
    /// greedily re-tests candidates to report a near-minimal failing
    /// case.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a (non-shrinking) value tree, mirroring the real API.
    #[allow(clippy::type_complexity)]
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(SampleTree {
            value: self.pick(runner.rng()),
        })
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }

    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }
}

/// A generated value plus its (here: trivial) shrink state.
pub trait ValueTree {
    /// The carried type.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;

    /// Try to shrink; the shim never shrinks.
    fn simplify(&mut self) -> bool {
        false
    }

    /// Undo a shrink; the shim never shrinks.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The shim's only tree shape: a single sampled value.
#[derive(Clone, Debug)]
pub struct SampleTree<V> {
    pub(crate) value: V,
}

impl<V: Clone> ValueTree for SampleTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.value.clone()
    }
}

/// Always produce one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn pick(&self, rng: &mut TestRng) -> V {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].pick(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[inline]
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }

            /// Toward the range start: the start itself, the midpoint
            /// (binary descent), and the predecessor (final single
            /// steps), so greedy re-testing converges to the smallest
            /// failing value.
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let (start, v128) = (self.start as i128, *v as i128);
                if v128 <= start {
                    return Vec::new();
                }
                let mut out = vec![self.start];
                let mid = start + (v128 - start) / 2;
                if mid != start && mid != v128 {
                    out.push(mid as $t);
                }
                out.push((v128 - 1) as $t);
                out.dedup();
                out
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }

            /// Componentwise: shrink one slot at a time, holding the
            /// others fixed.
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&v.$idx).into_iter().take(4) {
                        let mut w = v.clone();
                        w.$idx = c;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// One `proptest!` argument: its strategy paired with the currently
/// bound value — the unit of the macro's greedy shrink loop.
pub struct Slot<S: Strategy> {
    /// The generating strategy (also the shrinker).
    pub strategy: S,
    /// The value currently bound to the argument.
    pub value: S::Value,
}

impl<S: Strategy> Slot<S> {
    /// Draw the initial value.
    pub fn sample(strategy: S, rng: &mut TestRng) -> Self {
        let value = strategy.pick(rng);
        Slot { strategy, value }
    }

    /// Candidate simpler values for the current binding.
    pub fn candidates(&self) -> Vec<S::Value> {
        self.strategy.shrink(&self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_shrinks_toward_start() {
        let s = 10i64..1000;
        assert_eq!(s.shrink(&10), Vec::<i64>::new(), "already minimal");
        let c = s.shrink(&500);
        assert_eq!(c, vec![10, 255, 499]);
        // Greedy descent reaches the start in logarithmically many
        // adopted steps.
        let mut v = 999i64;
        let mut adopted = 0;
        while let Some(&next) = s.shrink(&v).first() {
            v = next;
            adopted += 1;
            assert!(adopted < 64, "must converge");
        }
        assert_eq!(v, 10);
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (0u8..10, 5i64..50);
        let cands = s.shrink(&(4, 40));
        assert!(cands.contains(&(0, 40)), "first slot toward start");
        assert!(cands.contains(&(4, 5)), "second slot toward start");
        assert!(cands.iter().all(|&(a, b)| (a, b) != (4, 40)));
    }
}

//! Strategies: composable random value generators.
//!
//! The real proptest's `Strategy` produces shrinkable `ValueTree`s; this
//! shim's strategies produce plain values (`pick`) and wrap them in a
//! no-shrink [`SampleTree`] where the `new_tree` API is exercised.

use crate::test_runner::{TestRng, TestRunner};
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a (non-shrinking) value tree, mirroring the real API.
    #[allow(clippy::type_complexity)]
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampleTree<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(SampleTree {
            value: self.pick(runner.rng()),
        })
    }

    /// Erase the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (**self).pick(rng)
    }
}

/// A generated value plus its (here: trivial) shrink state.
pub trait ValueTree {
    /// The carried type.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;

    /// Try to shrink; the shim never shrinks.
    fn simplify(&mut self) -> bool {
        false
    }

    /// Undo a shrink; the shim never shrinks.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The shim's only tree shape: a single sampled value.
#[derive(Clone, Debug)]
pub struct SampleTree<V> {
    pub(crate) value: V,
}

impl<V: Clone> ValueTree for SampleTree<V> {
    type Value = V;

    fn current(&self) -> V {
        self.value.clone()
    }
}

/// Always produce one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy of [`crate::any`].
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn pick(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.pick(rng))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn pick(&self, rng: &mut TestRng) -> V {
        let k = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[k].pick(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[inline]
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

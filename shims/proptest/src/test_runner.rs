//! Test-runner plumbing, mirroring `proptest::test_runner`.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Budget of candidate re-runs the greedy shrinker may spend on a
    /// failing case (0 disables shrinking).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_iters: 512,
        }
    }
}

/// Seed algorithm selector, accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RngAlgorithm {
    /// The real proptest's default.
    ChaCha,
    /// Alternative algorithm tag.
    XorShift,
}

/// The deterministic RNG driving strategies (splitmix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from raw bytes (the first 8 are used), mirroring the real
    /// `TestRng::from_seed`.
    pub fn from_seed(_algorithm: RngAlgorithm, seed: &[u8]) -> Self {
        let mut b = [0u8; 8];
        for (slot, &byte) in b.iter_mut().zip(seed.iter()) {
            *slot = byte;
        }
        Self::from_u64(u64::from_le_bytes(b))
    }

    /// Seed from a 64-bit value.
    pub fn from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6a09_e667_f3bc_c909,
        }
    }

    /// The raw 64-bit output of the generator.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Holds the RNG that `Strategy::new_tree` draws from.
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed default seed.
    pub fn new(config: Config) -> Self {
        Self::new_with_rng(config, TestRng::from_u64(0))
    }

    /// A runner drawing from the given RNG.
    pub fn new_with_rng(config: Config, rng: TestRng) -> Self {
        TestRunner { config, rng }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// The runner's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }
}

/// Serializes the `proptest!` shrink loop's panic-hook swap across
/// threads. The hook is process-global: without mutual exclusion, two
/// properties shrinking concurrently could interleave
/// `take_hook`/`set_hook` and leave the silencing hook installed for
/// the rest of the process. Hold the guard from before `take_hook`
/// until after the original hook is restored.
pub fn shrink_hook_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A panic while the lock is held (there is none: the guarded region
    // only swaps hooks) would poison it; recover rather than cascade.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a over bytes; seeds per-test RNGs from the test name.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

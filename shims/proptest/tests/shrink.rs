//! End-to-end shrinking through the `proptest!` macro: deliberately
//! failing properties must be minimized before the final (replayed)
//! panic, so the harness reports near-minimal inputs.

use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

static SMALLEST_INT: AtomicI64 = AtomicI64::new(i64::MAX);

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Fails exactly when a >= 100; the true minimum is 100.
    fn int_property_fails_at_100(a in 0i64..1000) {
        if a >= 100 {
            SMALLEST_INT.fetch_min(a, Ordering::SeqCst);
            panic!("boom at {a}");
        }
    }
}

#[test]
fn integer_case_shrinks_to_the_boundary() {
    let result = std::panic::catch_unwind(int_property_fails_at_100);
    assert!(result.is_err(), "the property must fail");
    assert_eq!(
        SMALLEST_INT.load(Ordering::SeqCst),
        100,
        "binary descent plus predecessor steps must reach the minimum"
    );
}

static LAST_FAILING_VEC: Mutex<Vec<i64>> = Mutex::new(Vec::new());

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Fails exactly when some element is >= 5; the minimal failing
    // input is the one-element vector [5].
    fn vec_property_fails_on_large_element(v in proptest::collection::vec(0i64..10, 0..12)) {
        if v.iter().any(|&x| x >= 5) {
            *LAST_FAILING_VEC.lock().unwrap() = v.clone();
            panic!("boom at {v:?}");
        }
    }
}

#[test]
fn vec_case_shrinks_to_a_single_boundary_element() {
    let result = std::panic::catch_unwind(vec_property_fails_on_large_element);
    assert!(result.is_err(), "the property must fail");
    // The greedy loop's last failing candidate is the adopted minimum,
    // and the uncaught replay records it once more.
    assert_eq!(*LAST_FAILING_VEC.lock().unwrap(), vec![5]);
}

proptest! {
    // Passing properties are unaffected by the shrinking machinery.
    fn passing_property_still_passes(a in 0u32..50, b in 0u32..50) {
        prop_assert!(a < 50 && b < 50);
    }
}

#[test]
fn passing_properties_run_clean() {
    passing_property_still_passes();
}

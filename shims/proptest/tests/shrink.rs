//! End-to-end shrinking through the `proptest!` macro: deliberately
//! failing properties must be minimized before the final (replayed)
//! panic, so the harness reports near-minimal inputs.

use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

static SMALLEST_INT: AtomicI64 = AtomicI64::new(i64::MAX);

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Fails exactly when a >= 100; the true minimum is 100.
    fn int_property_fails_at_100(a in 0i64..1000) {
        if a >= 100 {
            SMALLEST_INT.fetch_min(a, Ordering::SeqCst);
            panic!("boom at {a}");
        }
    }
}

#[test]
fn integer_case_shrinks_to_the_boundary() {
    let result = std::panic::catch_unwind(int_property_fails_at_100);
    assert!(result.is_err(), "the property must fail");
    assert_eq!(
        SMALLEST_INT.load(Ordering::SeqCst),
        100,
        "binary descent plus predecessor steps must reach the minimum"
    );
}

static LAST_FAILING_VEC: Mutex<Vec<i64>> = Mutex::new(Vec::new());

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Fails exactly when some element is >= 5; the minimal failing
    // input is the one-element vector [5].
    fn vec_property_fails_on_large_element(v in proptest::collection::vec(0i64..10, 0..12)) {
        if v.iter().any(|&x| x >= 5) {
            *LAST_FAILING_VEC.lock().unwrap() = v.clone();
            panic!("boom at {v:?}");
        }
    }
}

#[test]
fn vec_case_shrinks_to_a_single_boundary_element() {
    let result = std::panic::catch_unwind(vec_property_fails_on_large_element);
    assert!(result.is_err(), "the property must fail");
    // The greedy loop's last failing candidate is the adopted minimum,
    // and the uncaught replay records it once more.
    assert_eq!(*LAST_FAILING_VEC.lock().unwrap(), vec![5]);
}

proptest! {
    // Passing properties are unaffected by the shrinking machinery.
    fn passing_property_still_passes(a in 0u32..50, b in 0u32..50) {
        prop_assert!(a < 50 && b < 50);
    }
}

#[test]
fn passing_properties_run_clean() {
    passing_property_still_passes();
}

static SMALLEST_MAPPED: AtomicI64 = AtomicI64::new(i64::MAX);

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Shrinking through `prop_map`: candidates come from the *pre-map*
    // input (an integer range), re-mapped. Fails exactly when the
    // mapped value is >= 600, i.e. the input is >= 300; the minimal
    // failing input is 300, so the minimal mapped value is 600.
    fn mapped_property_fails_at_600(v in (0i64..1000).prop_map(|x| x * 2)) {
        if v >= 600 {
            SMALLEST_MAPPED.fetch_min(v, Ordering::SeqCst);
            panic!("boom at {v}");
        }
    }
}

#[test]
fn prop_map_case_shrinks_through_the_mapping() {
    let result = std::panic::catch_unwind(mapped_property_fails_at_600);
    assert!(result.is_err(), "the property must fail");
    assert_eq!(
        SMALLEST_MAPPED.load(Ordering::SeqCst),
        600,
        "the pre-map input must shrink to its boundary and re-map"
    );
}

static SMALLEST_ARM: AtomicI64 = AtomicI64::new(i64::MAX);

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // Shrinking through `prop_oneof!` arms: the constant arm (0) never
    // fails; range-arm values >= 50 fail and must descend *within the
    // arm* to exactly 50. The middle arm checks that a `prop_map`
    // nested inside a oneof arm shrinks too (fails at 2*x >= 50 with
    // even minimum 50).
    fn oneof_property_fails_at_50(
        v in prop_oneof![
            Just(0i64),
            (10i64..500).prop_map(|x| x * 2),
            10i64..1000,
        ],
    ) {
        if v >= 50 {
            SMALLEST_ARM.fetch_min(v, Ordering::SeqCst);
            panic!("boom at {v}");
        }
    }
}

#[test]
fn prop_oneof_case_shrinks_within_its_arm() {
    let result = std::panic::catch_unwind(oneof_property_fails_at_50);
    assert!(result.is_err(), "the property must fail");
    assert_eq!(
        SMALLEST_ARM.load(Ordering::SeqCst),
        50,
        "the producing arm must descend to its own boundary"
    );
}

static LAST_FAILING_MAPPED_VEC: Mutex<Vec<i64>> = Mutex::new(Vec::new());

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Composition: vector *elements* generated through `prop_map`
    // still shrink both structurally (removals) and elementwise
    // (through the map). Minimal failing input is one doubled element
    // at its boundary: [10].
    fn vec_of_mapped_fails_on_large_element(
        v in proptest::collection::vec((0i64..100).prop_map(|x| x * 2), 0..10),
    ) {
        if v.iter().any(|&x| x >= 10) {
            *LAST_FAILING_MAPPED_VEC.lock().unwrap() = v.clone();
            panic!("boom at {v:?}");
        }
    }
}

#[test]
fn vec_of_mapped_elements_shrinks_structurally_and_through_the_map() {
    let result = std::panic::catch_unwind(vec_of_mapped_fails_on_large_element);
    assert!(result.is_err(), "the property must fail");
    assert_eq!(*LAST_FAILING_MAPPED_VEC.lock().unwrap(), vec![10]);
}

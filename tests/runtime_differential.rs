//! Differential tests for the sharded multi-query `Runtime`: N queries
//! registered in one runtime must produce exactly the same outputs (as
//! multisets of `(position, valuation)`) as N independent per-query
//! `StreamingEvaluator`s fed the full stream — for every shard count,
//! both partition modes, and both window policies.
//!
//! The runtime evaluates hosted queries through the *shared* path
//! (skeleton groups + the per-shard predicate cache), so every test in
//! this file is also a differential check of that machinery against the
//! private single-query prefilter; the fleets of near-duplicate
//! variants below stress it specifically (exact duplicate predicates,
//! cross-query dedup, group churn through deregister/replace/restore).

use pcea::baselines::NaiveRunsEvaluator;
use pcea::prelude::*;
use proptest::prelude::*;

/// Deterministic dense stream over all relations of `schema`, one value
/// domain per attribute position.
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

/// Sorted `(position, valuation)` multiset of one per-query evaluator
/// over the whole stream.
fn single_engine_outputs(
    pcea: &Pcea,
    window: WindowPolicy,
    stream: &[Tuple],
) -> Vec<(u64, Valuation)> {
    let mut engine = StreamingEvaluator::with_window(pcea.clone(), window);
    let mut out = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        for v in engine.push_collect(t) {
            out.push((n as u64, v));
        }
    }
    out.sort();
    out
}

/// Sorted `(position, valuation)` multiset of one query's runtime events.
fn runtime_outputs(events: &[MatchEvent], q: QueryId) -> Vec<(u64, Valuation)> {
    let mut out: Vec<(u64, Valuation)> = events
        .iter()
        .filter(|e| e.query == q)
        .map(|e| (e.position, e.valuation.clone()))
        .collect();
    out.sort();
    out
}

/// Count windows: four queries (two front-ends, both partition modes),
/// compared per shard count and window size.
#[test]
fn count_windows_match_independent_evaluators() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let star = parse_query(&mut schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(&schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(&mut schema, "A(x) ; B(x)").unwrap().pcea;
    let stream = mixed_stream(&schema, 400);

    for w in [0u64, 3, 16, 1000] {
        for shards in [1usize, 2, 4, 8] {
            let mut rt = Runtime::new(shards);
            let specs = [
                ("q0_pinned", q0_pcea.clone(), Partition::ByQuery),
                ("q0_keyed", q0_pcea.clone(), Partition::ByKey { pos: 0 }),
                ("star_pinned", star_pcea.clone(), Partition::ByQuery),
                ("pat_keyed", pat.clone(), Partition::ByKey { pos: 0 }),
            ];
            let mut ids = Vec::new();
            for (name, pcea, partition) in &specs {
                let id = rt
                    .register(
                        QuerySpec::new(*name, pcea.clone(), WindowPolicy::Count(w))
                            .with_partition(*partition),
                    )
                    .unwrap();
                ids.push(id);
            }
            let events = rt.push_batch(&stream);
            for ((name, pcea, _), id) in specs.iter().zip(&ids) {
                let want = single_engine_outputs(pcea, WindowPolicy::Count(w), &stream);
                assert_eq!(
                    runtime_outputs(&events, *id),
                    want,
                    "{name}: w={w}, shards={shards}"
                );
            }
        }
    }
}

/// Time windows: timestamps are the (monotone) stream position, carried
/// in attribute 0 of every tuple.
#[test]
fn time_windows_match_independent_evaluators() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    // Joins are keyed on `x` (attribute 1), so the query may also be
    // key-partitioned on it.
    assert!(pcea.supports_key_partition(1));
    let stream: Vec<Tuple> = (0..300)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(rel, vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
        })
        .collect();

    for duration in [0i64, 4, 25, 10_000] {
        let window = WindowPolicy::Time {
            duration,
            ts_pos: 0,
        };
        for shards in [1usize, 3, 8] {
            let mut rt = Runtime::new(shards);
            let pinned = rt
                .register(QuerySpec::new("timed_pinned", pcea.clone(), window.clone()))
                .unwrap();
            let keyed = rt
                .register(
                    QuerySpec::new("timed_keyed", pcea.clone(), window.clone())
                        .with_partition(Partition::ByKey { pos: 1 }),
                )
                .unwrap();
            let events = rt.push_batch(&stream);
            let want = single_engine_outputs(&pcea, window.clone(), &stream);
            assert!(
                !want.is_empty() || duration == 0,
                "the workload must exercise the window"
            );
            for (name, id) in [("pinned", pinned), ("keyed", keyed)] {
                assert_eq!(
                    runtime_outputs(&events, id),
                    want,
                    "{name}: duration={duration}, shards={shards}"
                );
            }
        }
    }
}

/// The baselines share the runtime's trait surface: driving the naive
/// evaluator through `dyn Evaluator` agrees with the runtime's engine.
#[test]
fn trait_surface_compares_like_for_like() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 200);

    let mut rt = Runtime::new(3);
    let id = rt
        .register(QuerySpec::new("q0", pcea.clone(), WindowPolicy::Count(12)))
        .unwrap();
    let events = rt.push_batch(&stream);

    let mut baseline: Box<dyn Evaluator> = Box::new(NaiveRunsEvaluator::new(pcea, 12));
    let mut want = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        for v in baseline.push_collect(t) {
            want.push((n as u64, v));
        }
    }
    want.sort();
    assert_eq!(runtime_outputs(&events, id), want);
}

/// Deregistration mid-stream: the removed query's matches stop at the
/// cut, the survivor is oblivious, and the final stats cover exactly
/// the prefix the query saw.
#[test]
fn deregistration_freezes_the_prefix() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 120);
    let (head, tail) = stream.split_at(60);
    let want_full = single_engine_outputs(&pcea, WindowPolicy::Count(9), &stream);
    let want_head: Vec<(u64, Valuation)> =
        want_full.iter().filter(|(p, _)| *p < 60).cloned().collect();

    for shards in [1usize, 2, 4] {
        let mut rt = Runtime::new(shards);
        let keep = rt
            .register(QuerySpec::new("keep", pcea.clone(), WindowPolicy::Count(9)))
            .unwrap();
        let doomed = rt
            .register(
                QuerySpec::new("doomed", pcea.clone(), WindowPolicy::Count(9))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap();
        let mut events = rt.push_batch(head);
        let final_stats = rt.deregister(doomed).unwrap();
        assert_eq!(final_stats.positions, 60, "shards={shards}");
        events.extend(rt.push_batch(tail));
        assert_eq!(
            runtime_outputs(&events, doomed),
            want_head,
            "shards={shards}: the dead query's matches stop at the cut"
        );
        assert_eq!(
            runtime_outputs(&events, keep),
            want_full,
            "shards={shards}: the survivor is unaffected"
        );
    }
}

/// σ0-shaped near-duplicate variant: `paper_p0`'s three-transition
/// skeleton over (`r`, `s`, `t`) with the S-branch tightened to
/// `S(x,y) ∧ y ≥ threshold`. Variants with equal thresholds are *exact*
/// duplicates — the shared predicate cache's prime target.
fn sigma0_variant(
    r: pcea::common::RelationId,
    s: pcea::common::RelationId,
    t: pcea::common::RelationId,
    threshold: i64,
) -> Pcea {
    let dot = LabelSet::singleton(Label(0));
    let mut b = PceaBuilder::new(1);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
    b.add_initial_transition(
        UnaryPredicate::Relation(s).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Ge,
            value: Value::Int(threshold),
        }),
        dot,
        q1,
    );
    b.add_transition(
        vec![
            (q0, EqPredicate::on_positions(t, [0usize], r, [0usize])),
            (
                q1,
                EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]),
            ),
        ],
        UnaryPredicate::Relation(r),
        dot,
        q2,
    );
    b.mark_final(q2);
    b.build()
}

/// A fresh σ0 schema (T/1, S/2, R/2) for the variant fleets.
fn sigma0_schema() -> (
    Schema,
    pcea::common::RelationId,
    pcea::common::RelationId,
    pcea::common::RelationId,
) {
    let mut schema = Schema::new();
    let t = schema.add_relation("T", 1).unwrap();
    let s = schema.add_relation("S", 2).unwrap();
    let r = schema.add_relation("R", 2).unwrap();
    (schema, r, s, t)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The shared-evaluation acceptance property: a fleet of
    /// near-duplicate queries (random thresholds, so duplicates are
    /// common) hosted in one runtime produces, query for query, exactly
    /// the independent per-query evaluator's outputs — across shard
    /// counts, both partition modes and count-window sizes.
    #[test]
    fn near_duplicate_fleet_matches_independent_evaluators(
        shards in 1usize..5,
        w in prop_oneof![Just(0u64), Just(3), Just(9), Just(1000)],
        keyed in any::<bool>(),
        thresholds in proptest::collection::vec(0i64..4, 1..10),
    ) {
        let (schema, r, s, t) = sigma0_schema();
        let stream = mixed_stream(&schema, 240);
        let mut rt = Runtime::new(shards);
        let mut ids = Vec::new();
        for (i, &th) in thresholds.iter().enumerate() {
            let mut spec = QuerySpec::new(
                format!("v{i}"),
                sigma0_variant(r, s, t, th),
                WindowPolicy::Count(w),
            );
            if keyed {
                spec = spec.with_partition(Partition::ByKey { pos: 0 });
            }
            ids.push(rt.register(spec).unwrap());
        }
        let events = rt.push_batch(&stream);
        for (&id, &th) in ids.iter().zip(&thresholds) {
            let want = single_engine_outputs(
                &sigma0_variant(r, s, t, th),
                WindowPolicy::Count(w),
                &stream,
            );
            prop_assert_eq!(runtime_outputs(&events, id), want);
        }
        // The fleet shares one skeleton, listens set and partition, so
        // each hosting shard keeps exactly one group; keyed queries are
        // hosted on every shard, and the cache saw real sharing.
        let stats = rt.stats();
        prop_assert_eq!(
            stats.shared.group_sizes.iter().sum::<usize>(),
            if keyed { shards * thresholds.len() } else { thresholds.len() }
        );
        prop_assert!(stats.shared.groups <= shards);
        prop_assert!(stats.shared.prefilter_evals_saved > 0);
        if keyed {
            let distinct: std::collections::HashSet<i64> =
                thresholds.iter().copied().collect();
            // Per shard: T, R, and one S-variant per distinct threshold.
            prop_assert_eq!(
                stats.shared.distinct_predicates,
                shards * (2 + distinct.len())
            );
            prop_assert_eq!(
                stats.shared.referenced_predicates,
                shards * 3 * thresholds.len()
            );
        }
    }

    /// Same property under *time* windows, over a two-relation join
    /// `A(ta,x), B(tb,x)` with the B-branch tightened per variant.
    #[test]
    fn near_duplicate_fleet_matches_under_time_windows(
        shards in 1usize..5,
        duration in prop_oneof![Just(0i64), Just(4), Just(25), Just(10_000)],
        keyed in any::<bool>(),
        thresholds in proptest::collection::vec(0i64..3, 1..8),
    ) {
        let mut schema = Schema::new();
        let a = schema.add_relation("A", 2).unwrap();
        let b = schema.add_relation("B", 2).unwrap();
        let variant = |threshold: i64| {
            let dot = LabelSet::singleton(Label(0));
            let mut builder = PceaBuilder::new(1);
            let q0 = builder.add_state();
            let q1 = builder.add_state();
            builder.add_initial_transition(UnaryPredicate::Relation(a), dot, q0);
            builder.add_transition(
                vec![(q0, EqPredicate::on_positions(a, [1usize], b, [1usize]))],
                UnaryPredicate::Relation(b).and(UnaryPredicate::Cmp {
                    pos: 1,
                    op: CmpOp::Ge,
                    value: Value::Int(threshold),
                }),
                dot,
                q1,
            );
            builder.mark_final(q1);
            builder.build()
        };
        // Timestamps are the stream position (attribute 0); joins key
        // on `x` (attribute 1), so ByKey partitions on it.
        let stream: Vec<Tuple> = (0..300)
            .map(|i| {
                let rel = if (i / 3) % 2 == 0 { a } else { b };
                Tuple::new(rel, vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
            })
            .collect();
        let window = WindowPolicy::Time { duration, ts_pos: 0 };
        let mut rt = Runtime::new(shards);
        let mut ids = Vec::new();
        for (i, &th) in thresholds.iter().enumerate() {
            let mut spec = QuerySpec::new(format!("v{i}"), variant(th), window.clone());
            if keyed {
                spec = spec.with_partition(Partition::ByKey { pos: 1 });
            }
            ids.push(rt.register(spec).unwrap());
        }
        let events = rt.push_batch(&stream);
        for (&id, &th) in ids.iter().zip(&thresholds) {
            let want = single_engine_outputs(&variant(th), window.clone(), &stream);
            prop_assert_eq!(runtime_outputs(&events, id), want);
        }
    }

    /// Group and cache maintenance under churn: push, deregister a
    /// duplicate, hot-swap another with an identical recompile
    /// (slot release + re-intern + regroup), snapshot, restore into a
    /// different shard count (groups rebuilt from scratch), push the
    /// rest — the survivors' outputs are exactly the uninterrupted
    /// independent runs.
    #[test]
    fn shared_path_survives_churn_and_restore(
        shards_before in 1usize..4,
        shards_after in 1usize..4,
        cut in 40usize..80,
    ) {
        let (schema, r, s, t) = sigma0_schema();
        let stream = mixed_stream(&schema, 160);
        // Duplicates on purpose: thresholds 0 and 1 both appear thrice.
        let thresholds = [0i64, 1, 0, 1, 0, 1];
        let window = WindowPolicy::Count(9);
        let mut rt = Runtime::new(shards_before);
        let mut ids = Vec::new();
        for (i, &th) in thresholds.iter().enumerate() {
            let mut spec = QuerySpec::new(
                format!("v{i}"),
                sigma0_variant(r, s, t, th),
                window.clone(),
            );
            if i % 2 == 0 {
                spec = spec.with_partition(Partition::ByKey { pos: 0 });
            }
            ids.push(rt.register(spec).unwrap());
        }
        let mut events = rt.push_batch(&stream[..cut]);
        // Retire one duplicate; its siblings must keep their slots.
        rt.deregister(ids[2]).unwrap();
        // Identical recompile: invisible to outputs, but releases and
        // re-interns the query's predicate slots and regroups it.
        rt.replace(
            ids[3],
            QuerySpec::new("v3_v2", sigma0_variant(r, s, t, 1), window.clone()),
        )
        .unwrap();
        let snap = rt.snapshot().unwrap();
        drop(rt);
        let mut rt2 = Runtime::restore(&snap, shards_after).unwrap();
        events.extend(rt2.push_batch(&stream[cut..]));
        for (k, (&id, &th)) in ids.iter().zip(&thresholds).enumerate() {
            if k == 2 {
                continue; // deregistered: checked by its own test above
            }
            let want = single_engine_outputs(
                &sigma0_variant(r, s, t, th),
                window.clone(),
                &stream,
            );
            prop_assert_eq!(runtime_outputs(&events, id), want, "query v{}", k);
        }
        // After restore the five survivors regrouped: every hosted
        // instance is in a group, and shards hosting several queries
        // dedup their shared T/R (and duplicate S) predicates.
        let stats = rt2.stats();
        prop_assert_eq!(stats.per_query.len(), 5);
        prop_assert!(stats.shared.groups >= 1);
        prop_assert!(stats.shared.group_sizes.iter().sum::<usize>() >= 5);
        prop_assert!(stats.shared.distinct_predicates < stats.shared.referenced_predicates);
    }
}

/// The exposed sharing counters on the easiest-to-count configuration:
/// one shard, six pinned queries over three distinct thresholds.
#[test]
fn runtime_stats_expose_predicate_sharing() {
    let (schema, r, s, t) = sigma0_schema();
    let stream = mixed_stream(&schema, 90);
    let mut rt = Runtime::new(1);
    for (i, th) in [0i64, 1, 2, 0, 1, 2].iter().enumerate() {
        rt.register(QuerySpec::new(
            format!("v{i}"),
            sigma0_variant(r, s, t, *th),
            WindowPolicy::Count(16),
        ))
        .unwrap();
    }
    rt.push_batch(&stream);
    let stats = rt.stats();
    // One skeleton group of six; 18 transition references collapse to
    // 5 distinct predicates (T, R, and three S-variants).
    assert_eq!(stats.shared.groups, 1);
    assert_eq!(stats.shared.group_sizes, vec![6]);
    assert_eq!(stats.shared.distinct_predicates, 5);
    assert_eq!(stats.shared.referenced_predicates, 18);
    // Naive cost would be one predicate evaluation per transition per
    // tuple; sharing plus relation confinement saves most of it.
    assert!(stats.shared.prefilter_evals_saved > stats.shared.prefilter_evals_done);
}

/// Incremental registration: a query registered mid-stream sees only the
/// suffix, at its true global positions.
#[test]
fn late_registration_sees_the_suffix() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 120);
    let (head, tail) = stream.split_at(60);

    let mut rt = Runtime::new(2);
    let early = rt
        .register(QuerySpec::new(
            "early",
            pcea.clone(),
            WindowPolicy::Count(9),
        ))
        .unwrap();
    let mut events = rt.push_batch(head);
    let late = rt
        .register(QuerySpec::new("late", pcea.clone(), WindowPolicy::Count(9)))
        .unwrap();
    events.extend(rt.push_batch(tail));

    let want_full = single_engine_outputs(&pcea, WindowPolicy::Count(9), &stream);
    assert_eq!(runtime_outputs(&events, early), want_full);
    // The late query saw tuples from global position 60 on; its matches
    // are exactly the full run's matches completing at ≥ 69 (everything
    // within window reach of the suffix but spanning the cut is lost,
    // which positions 60..69 may still straddle).
    let late_got = runtime_outputs(&events, late);
    assert!(late_got.iter().all(|(p, _)| *p >= 60));
    let want_suffix: Vec<(u64, Valuation)> = want_full
        .iter()
        .filter(|(p, v)| {
            let _ = p;
            v.min_pos().is_some_and(|m| m >= 60)
        })
        .cloned()
        .collect();
    assert_eq!(late_got, want_suffix);
}

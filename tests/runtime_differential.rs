//! Differential tests for the sharded multi-query `Runtime`: N queries
//! registered in one runtime must produce exactly the same outputs (as
//! multisets of `(position, valuation)`) as N independent per-query
//! `StreamingEvaluator`s fed the full stream — for every shard count,
//! both partition modes, and both window policies.

use pcea::baselines::NaiveRunsEvaluator;
use pcea::prelude::*;

/// Deterministic dense stream over all relations of `schema`, one value
/// domain per attribute position.
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

/// Sorted `(position, valuation)` multiset of one per-query evaluator
/// over the whole stream.
fn single_engine_outputs(
    pcea: &Pcea,
    window: WindowPolicy,
    stream: &[Tuple],
) -> Vec<(u64, Valuation)> {
    let mut engine = StreamingEvaluator::with_window(pcea.clone(), window);
    let mut out = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        for v in engine.push_collect(t) {
            out.push((n as u64, v));
        }
    }
    out.sort();
    out
}

/// Sorted `(position, valuation)` multiset of one query's runtime events.
fn runtime_outputs(events: &[MatchEvent], q: QueryId) -> Vec<(u64, Valuation)> {
    let mut out: Vec<(u64, Valuation)> = events
        .iter()
        .filter(|e| e.query == q)
        .map(|e| (e.position, e.valuation.clone()))
        .collect();
    out.sort();
    out
}

/// Count windows: four queries (two front-ends, both partition modes),
/// compared per shard count and window size.
#[test]
fn count_windows_match_independent_evaluators() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let star = parse_query(&mut schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(&schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(&mut schema, "A(x) ; B(x)").unwrap().pcea;
    let stream = mixed_stream(&schema, 400);

    for w in [0u64, 3, 16, 1000] {
        for shards in [1usize, 2, 4, 8] {
            let mut rt = Runtime::new(shards);
            let specs = [
                ("q0_pinned", q0_pcea.clone(), Partition::ByQuery),
                ("q0_keyed", q0_pcea.clone(), Partition::ByKey { pos: 0 }),
                ("star_pinned", star_pcea.clone(), Partition::ByQuery),
                ("pat_keyed", pat.clone(), Partition::ByKey { pos: 0 }),
            ];
            let mut ids = Vec::new();
            for (name, pcea, partition) in &specs {
                let id = rt
                    .register(
                        QuerySpec::new(*name, pcea.clone(), WindowPolicy::Count(w))
                            .with_partition(*partition),
                    )
                    .unwrap();
                ids.push(id);
            }
            let events = rt.push_batch(&stream);
            for ((name, pcea, _), id) in specs.iter().zip(&ids) {
                let want = single_engine_outputs(pcea, WindowPolicy::Count(w), &stream);
                assert_eq!(
                    runtime_outputs(&events, *id),
                    want,
                    "{name}: w={w}, shards={shards}"
                );
            }
        }
    }
}

/// Time windows: timestamps are the (monotone) stream position, carried
/// in attribute 0 of every tuple.
#[test]
fn time_windows_match_independent_evaluators() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    // Joins are keyed on `x` (attribute 1), so the query may also be
    // key-partitioned on it.
    assert!(pcea.supports_key_partition(1));
    let stream: Vec<Tuple> = (0..300)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(rel, vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
        })
        .collect();

    for duration in [0i64, 4, 25, 10_000] {
        let window = WindowPolicy::Time {
            duration,
            ts_pos: 0,
        };
        for shards in [1usize, 3, 8] {
            let mut rt = Runtime::new(shards);
            let pinned = rt
                .register(QuerySpec::new("timed_pinned", pcea.clone(), window.clone()))
                .unwrap();
            let keyed = rt
                .register(
                    QuerySpec::new("timed_keyed", pcea.clone(), window.clone())
                        .with_partition(Partition::ByKey { pos: 1 }),
                )
                .unwrap();
            let events = rt.push_batch(&stream);
            let want = single_engine_outputs(&pcea, window.clone(), &stream);
            assert!(
                !want.is_empty() || duration == 0,
                "the workload must exercise the window"
            );
            for (name, id) in [("pinned", pinned), ("keyed", keyed)] {
                assert_eq!(
                    runtime_outputs(&events, id),
                    want,
                    "{name}: duration={duration}, shards={shards}"
                );
            }
        }
    }
}

/// The baselines share the runtime's trait surface: driving the naive
/// evaluator through `dyn Evaluator` agrees with the runtime's engine.
#[test]
fn trait_surface_compares_like_for_like() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 200);

    let mut rt = Runtime::new(3);
    let id = rt
        .register(QuerySpec::new("q0", pcea.clone(), WindowPolicy::Count(12)))
        .unwrap();
    let events = rt.push_batch(&stream);

    let mut baseline: Box<dyn Evaluator> = Box::new(NaiveRunsEvaluator::new(pcea, 12));
    let mut want = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        for v in baseline.push_collect(t) {
            want.push((n as u64, v));
        }
    }
    want.sort();
    assert_eq!(runtime_outputs(&events, id), want);
}

/// Deregistration mid-stream: the removed query's matches stop at the
/// cut, the survivor is oblivious, and the final stats cover exactly
/// the prefix the query saw.
#[test]
fn deregistration_freezes_the_prefix() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 120);
    let (head, tail) = stream.split_at(60);
    let want_full = single_engine_outputs(&pcea, WindowPolicy::Count(9), &stream);
    let want_head: Vec<(u64, Valuation)> =
        want_full.iter().filter(|(p, _)| *p < 60).cloned().collect();

    for shards in [1usize, 2, 4] {
        let mut rt = Runtime::new(shards);
        let keep = rt
            .register(QuerySpec::new("keep", pcea.clone(), WindowPolicy::Count(9)))
            .unwrap();
        let doomed = rt
            .register(
                QuerySpec::new("doomed", pcea.clone(), WindowPolicy::Count(9))
                    .with_partition(Partition::ByKey { pos: 0 }),
            )
            .unwrap();
        let mut events = rt.push_batch(head);
        let final_stats = rt.deregister(doomed).unwrap();
        assert_eq!(final_stats.positions, 60, "shards={shards}");
        events.extend(rt.push_batch(tail));
        assert_eq!(
            runtime_outputs(&events, doomed),
            want_head,
            "shards={shards}: the dead query's matches stop at the cut"
        );
        assert_eq!(
            runtime_outputs(&events, keep),
            want_full,
            "shards={shards}: the survivor is unaffected"
        );
    }
}

/// Incremental registration: a query registered mid-stream sees only the
/// suffix, at its true global positions.
#[test]
fn late_registration_sees_the_suffix() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let stream = mixed_stream(&schema, 120);
    let (head, tail) = stream.split_at(60);

    let mut rt = Runtime::new(2);
    let early = rt
        .register(QuerySpec::new(
            "early",
            pcea.clone(),
            WindowPolicy::Count(9),
        ))
        .unwrap();
    let mut events = rt.push_batch(head);
    let late = rt
        .register(QuerySpec::new("late", pcea.clone(), WindowPolicy::Count(9)))
        .unwrap();
    events.extend(rt.push_batch(tail));

    let want_full = single_engine_outputs(&pcea, WindowPolicy::Count(9), &stream);
    assert_eq!(runtime_outputs(&events, early), want_full);
    // The late query saw tuples from global position 60 on; its matches
    // are exactly the full run's matches completing at ≥ 69 (everything
    // within window reach of the suffix but spanning the cut is lost,
    // which positions 60..69 may still straddle).
    let late_got = runtime_outputs(&events, late);
    assert!(late_got.iter().all(|(p, _)| *p >= 60));
    let want_suffix: Vec<(u64, Valuation)> = want_full
        .iter()
        .filter(|(p, v)| {
            let _ = p;
            v.min_pos().is_some_and(|m| m >= 60)
        })
        .cloned()
        .collect();
    assert_eq!(late_got, want_suffix);
}

//! Randomized differential testing: for a catalog of hierarchical
//! queries (with and without self-joins, constants, disconnection) and
//! random streams,
//!
//! ```text
//! streaming engine  ==  reference PCEA semantics  ==  t-hom oracle
//! ```
//!
//! at every position and for every window size, plus unambiguity of
//! every compiled automaton on every sampled stream.

use pcea::prelude::*;
use proptest::prelude::*;

/// The query catalog: all hierarchical, shapes chosen to exercise every
/// compiler path (star, deep tree, satellites, self-joins at the root
/// and under variables, constants, repeated variables, disconnection).
const CATALOG: &[&str] = &[
    "Q(x, y) <- T(x), S(x, y), R(x, y)",
    "Q(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)",
    "Q(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)",
    "Q(x) <- T(x), T(x)",
    "Q(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)",
    "Q(x, y) <- T(x), S(x, y), S(x, y)",
    "Q(y) <- S(2, y), N(y)",
    "Q(x) <- S(x, x), T(x)",
    "Q(x, y) <- T(x), U(y)",
    "Q(x, y, z) <- R(x, y), S(y, z)",
];

/// Generate a random stream over the query's schema with small value
/// domains (dense joins stress every code path; the reference oracle
/// caps the length).
fn stream_strategy(schema: &Schema, max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    let rels: Vec<(pcea::common::RelationId, usize)> =
        schema.relations().map(|r| (r, schema.arity(r))).collect();
    let tuple =
        (0..rels.len(), proptest::collection::vec(0i64..4, 0..8)).prop_map(move |(ri, vals)| {
            let (rel, arity) = rels[ri];
            let values: Vec<Value> = (0..arity)
                .map(|k| Value::Int(*vals.get(k).unwrap_or(&1)))
                .collect();
            Tuple::new(rel, values)
        });
    proptest::collection::vec(tuple, 0..max_len)
}

fn check_one(text: &str, stream: &[Tuple], windows: &[u64]) {
    let mut schema = Schema::new();
    let query = parse_query(&mut schema, text).unwrap();
    let compiled = compile_hcq(&schema, &query).unwrap();

    // Reference PCEA semantics + unambiguity.
    let reference = ReferenceEval::new(&compiled.pcea, stream);
    reference
        .check_unambiguous()
        .unwrap_or_else(|e| panic!("{text} compiled ambiguously: {e}"));

    for n in 0..stream.len() {
        // Reference == t-hom oracle (Theorem 4.1).
        assert_eq!(
            reference.outputs_at(n),
            pcea::cq::hom::new_outputs_at(&query, stream, n),
            "{text}: reference vs t-hom at position {n}"
        );
    }

    // Engine == reference, windowed (Theorem 5.1).
    for &w in windows {
        let mut engine = StreamingEvaluator::new(compiled.pcea.clone(), w);
        engine.set_gc_every(3); // stress the collector too
        for (n, tu) in stream.iter().enumerate() {
            let mut got = engine.push_collect(tu);
            got.sort();
            assert_eq!(
                got,
                reference.windowed_outputs_at(n, w),
                "{text}: engine vs reference at position {n}, w={w}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engine_matches_oracles_on_random_streams(
        qi in 0..CATALOG.len(),
        seed in any::<u64>(),
    ) {
        let text = CATALOG[qi];
        let mut schema = Schema::new();
        let query = parse_query(&mut schema, text).unwrap();
        // Self-join queries explode the oracle faster: shorter streams.
        let max_len = if query.has_self_joins() { 10 } else { 14 };
        let mut runner = proptest::test_runner::TestRunner::new_with_rng(
            ProptestConfig::default(),
            proptest::test_runner::TestRng::from_seed(
                proptest::test_runner::RngAlgorithm::ChaCha,
                &{
                    let mut b = [0u8; 32];
                    b[..8].copy_from_slice(&seed.to_le_bytes());
                    b
                },
            ),
        );
        use proptest::strategy::ValueTree;
        let stream = stream_strategy(&schema, max_len)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        check_one(text, &stream, &[0, 2, 5, 1_000]);
    }
}

/// Deterministic sweep: every catalog query on a fixed dense stream with
/// every window size from 0 to the stream length.
#[test]
fn catalog_exhaustive_windows_on_fixed_stream() {
    for text in CATALOG {
        let mut schema = Schema::new();
        let query = parse_query(&mut schema, text).unwrap();
        let rels: Vec<_> = schema.relations().collect();
        let n = if query.has_self_joins() { 8 } else { 12 };
        let stream: Vec<Tuple> = (0..n)
            .map(|i| {
                let rel = rels[i % rels.len()];
                let arity = schema.arity(rel);
                Tuple::new(
                    rel,
                    (0..arity)
                        .map(|k| Value::Int(((i + k) % 2) as i64))
                        .collect(),
                )
            })
            .collect();
        let windows: Vec<u64> = (0..=stream.len() as u64).collect();
        check_one(text, &stream, &windows);
    }
}

// The Chaudhuri–Vardi equivalence (Appendix B) on random databases.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn thom_semantics_equals_cv_semantics(
        qi in 0..CATALOG.len(),
        raw in proptest::collection::vec((0usize..8, 0i64..3, 0i64..3, 0i64..3), 0..10),
    ) {
        let text = CATALOG[qi];
        let mut schema = Schema::new();
        let query = parse_query(&mut schema, text).unwrap();
        let rels: Vec<_> = schema.relations().collect();
        let mut db = pcea::cq::Database::new();
        for (ri, a, b, c) in raw {
            let rel = rels[ri % rels.len()];
            let arity = schema.arity(rel);
            let vals = [a, b, c];
            db.insert(Tuple::new(
                rel,
                (0..arity).map(|k| Value::Int(vals[k.min(2)])).collect(),
            ));
        }
        prop_assert_eq!(
            pcea::cq::hom::thom_bag_semantics(&query, &db),
            pcea::cq::hom::cv_bag_semantics(&query, &db)
        );
    }
}

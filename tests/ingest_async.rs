//! Differential and liveness tests for the asynchronous ingestion
//! pipeline: events delivered through subscriptions after `drain()`
//! must equal the synchronous `push_batch` output on the same stream —
//! for every shard count, both partition modes, and both window kinds —
//! and a stalled subscriber must never block producers under
//! `BackpressurePolicy::DropNewest`.
//!
//! For the striped sequencer, the property generalizes to *concurrent*
//! producers: the stamped global order is nondeterministic, but the
//! producers' receipts reveal it, so the proptest differential
//! reconstructs the stamped stream and replays it through the
//! synchronous path — outputs must agree exactly, across shard counts,
//! producer counts, partition modes and both window kinds. Shutdown
//! liveness (dropping a runtime under a live, undrained `Block`
//! subscription) and `DropNewest` accounting through the reorder stage
//! (including `queue_capacity` 0 and 1) are covered here too.

use pcea::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// Deterministic dense stream over all relations of `schema`, one value
/// domain per attribute position.
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

fn sorted(mut events: Vec<MatchEvent>) -> Vec<MatchEvent> {
    events.sort();
    events
}

/// The four-query spec set shared with `runtime_differential.rs`.
fn spec_set(schema: &mut Schema) -> Vec<(String, Pcea, Partition)> {
    let q0 = parse_query(schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(schema, &q0).unwrap().pcea;
    let star = parse_query(schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(schema, "A(x) ; B(x)").unwrap().pcea;
    vec![
        ("q0_pinned".into(), q0_pcea.clone(), Partition::ByQuery),
        ("q0_keyed".into(), q0_pcea, Partition::ByKey { pos: 0 }),
        ("star_pinned".into(), star_pcea, Partition::ByQuery),
        ("pat_keyed".into(), pat, Partition::ByKey { pos: 0 }),
    ]
}

fn register_all(
    rt: &mut Runtime,
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
) -> Vec<QueryId> {
    specs
        .iter()
        .map(|(name, pcea, partition)| {
            rt.register(
                QuerySpec::new(name.clone(), pcea.clone(), window.clone())
                    .with_partition(*partition),
            )
            .unwrap()
        })
        .collect()
}

/// Events delivered through subscriptions when the stream is fed by an
/// `IngestHandle` producer thread, collected after `drain()`. Also
/// checks that a per-query subscription receives exactly its slice.
fn async_events(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    shards: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards);
    let ids = register_all(&mut rt, specs, window);
    // Unbounded lossless collectors: the fence below requires either a
    // concurrent consumer or enough capacity.
    let all = rt.subscribe_with(
        SubscriptionFilter::All,
        usize::MAX,
        BackpressurePolicy::Block,
    );
    let one = rt.subscribe_with(
        SubscriptionFilter::Query(ids[0]),
        usize::MAX,
        BackpressurePolicy::Block,
    );
    let handle = rt.ingest_handle();
    let producer = {
        let stream = stream.to_vec();
        std::thread::spawn(move || {
            for chunk in stream.chunks(17) {
                let receipt = handle.push_batch(chunk).unwrap();
                assert_eq!(receipt.dropped, 0, "Block never drops");
            }
        })
    };
    producer.join().unwrap();
    rt.drain();
    let events = sorted(all.drain());
    let filtered = sorted(one.drain());
    let want_first: Vec<&MatchEvent> = events.iter().filter(|e| e.query == ids[0]).collect();
    assert_eq!(
        filtered.iter().collect::<Vec<_>>(),
        want_first,
        "per-query subscription sees exactly its query's events"
    );
    events
}

/// Synchronous reference on an identical runtime.
fn sync_events(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    shards: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards);
    register_all(&mut rt, specs, window);
    sorted(rt.push_batch(stream))
}

#[test]
fn subscriptions_match_sync_push_batch_count_windows() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 400);
    let mut any_events = false;
    for w in [0u64, 3, 16, 1000] {
        let window = WindowPolicy::Count(w);
        for shards in [1usize, 2, 4, 8] {
            let want = sync_events(&specs, &window, &stream, shards);
            let got = async_events(&specs, &window, &stream, shards);
            assert_eq!(got, want, "w={w}, shards={shards}");
            any_events |= !want.is_empty();
        }
    }
    assert!(any_events, "the workload must produce matches somewhere");
}

#[test]
fn subscriptions_match_sync_push_batch_time_windows() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    assert!(pcea.supports_key_partition(1));
    let specs = vec![
        ("timed_pinned".to_string(), pcea.clone(), Partition::ByQuery),
        ("timed_keyed".to_string(), pcea, Partition::ByKey { pos: 1 }),
    ];
    let stream: Vec<Tuple> = (0..300)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(rel, vec![Value::Int(i as i64), Value::Int((i % 3) as i64)])
        })
        .collect();
    for duration in [0i64, 4, 25, 10_000] {
        let window = WindowPolicy::Time {
            duration,
            ts_pos: 0,
        };
        for shards in [1usize, 3, 8] {
            let want = sync_events(&specs, &window, &stream, shards);
            let got = async_events(&specs, &window, &stream, shards);
            assert_eq!(got, want, "duration={duration}, shards={shards}");
        }
    }
}

/// Concurrent producers: positions interleave nondeterministically, but
/// the sequencer must stamp a gap-free range and a single-atom query
/// (order-independent) must fire once per matching tuple.
#[test]
fn concurrent_producers_lose_nothing_under_block() {
    let mut schema = Schema::new();
    let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let per_producer = 2_000usize;
    let producers = 4usize;
    let mut rt = Runtime::new(RuntimeConfig::new(3).with_ingest(IngestConfig {
        queue_capacity: 64, // tiny: forces real backpressure
        policy: BackpressurePolicy::Block,
        ..IngestConfig::default()
    }));
    let q = rt
        .register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(8)))
        .unwrap();
    let sub = rt.subscribe_with(
        SubscriptionFilter::All,
        usize::MAX,
        BackpressurePolicy::Block,
    );
    std::thread::scope(|scope| {
        for p in 0..producers {
            let handle = rt.ingest_handle();
            scope.spawn(move || {
                for i in 0..per_producer {
                    let t = Tuple::new(a, vec![Value::Int((p * per_producer + i) as i64)]);
                    handle.push(&t).unwrap();
                }
            });
        }
    });
    rt.drain();
    assert_eq!(rt.next_position(), (producers * per_producer) as u64);
    let events = sub.drain();
    assert_eq!(events.len(), producers * per_producer);
    assert!(events.iter().all(|e| e.query == q));
    // Gap-free stamping: every position fired exactly once.
    let mut positions: Vec<u64> = events.iter().map(|e| e.position).collect();
    positions.sort_unstable();
    assert!(positions.iter().enumerate().all(|(i, &p)| p == i as u64));
    let stats = rt.stats();
    assert!(stats.shard_queues.iter().all(|qs| qs.dropped == 0));
    assert!(stats.shard_queues.iter().any(|qs| qs.high_water > 0));
}

/// The acceptance property: a deliberately stalled subscriber never
/// blocks `IngestHandle` producers under `DropNewest`.
#[test]
fn stalled_subscriber_never_blocks_producers_under_drop_newest() {
    let mut schema = Schema::new();
    let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let mut rt = Runtime::new(RuntimeConfig::new(2).with_ingest(IngestConfig {
        queue_capacity: 1 << 14,
        policy: BackpressurePolicy::DropNewest,
        ..IngestConfig::default()
    }));
    rt.register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(4)))
        .unwrap();
    // The stalled consumer: capacity 4, never drained, DropNewest on
    // its own channel so publishers shed instead of parking.
    let stalled = rt.subscribe_with(SubscriptionFilter::All, 4, BackpressurePolicy::DropNewest);
    let n = 50_000usize;
    let started = Instant::now();
    let handle = rt.ingest_handle();
    let producer = std::thread::spawn(move || {
        let batch: Vec<Tuple> = (0..n)
            .map(|i| Tuple::new(a, vec![Value::Int(i as i64)]))
            .collect();
        let mut dropped = 0u64;
        for chunk in batch.chunks(512) {
            dropped += handle.push_batch(chunk).unwrap().dropped;
        }
        dropped
    });
    // The producer must finish promptly even though nobody consumes:
    // DropNewest never parks it on the queues, and the stalled
    // subscriber sheds on its own channel.
    let ingest_dropped = producer.join().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "producer stalled for {elapsed:?}"
    );
    rt.drain();
    // The stalled channel kept its first 4 events and counted the shed.
    assert_eq!(stalled.len(), 4);
    assert!(stalled.dropped() > 0, "the stalled channel must have shed");
    let delivered = stalled.len() as u64 + stalled.dropped();
    let stats = rt.stats();
    let queue_dropped: u64 = stats.shard_queues.iter().map(|qs| qs.dropped).sum();
    assert_eq!(queue_dropped, ingest_dropped);
    // Every tuple was either evaluated (then delivered or shed at the
    // subscriber) or dropped at an ingest queue.
    assert_eq!(delivered + queue_dropped, n as u64);
}

/// Regression (shutdown hang): dropping a `Runtime` while a live, full
/// `Block` subscription is parked on must terminate. Before the striped
/// sequencer PR, the shard worker sat in `SubQueue::offer` forever —
/// `IngestShared::close` closed the shard queues but never the
/// subscriber channels — and `Drop` hung joining the worker.
#[test]
fn dropping_runtime_with_full_block_subscriber_terminates() {
    let mut schema = Schema::new();
    let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let mut rt = Runtime::new(1);
    rt.register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(4)))
        .unwrap();
    // Capacity-1 lossless channel, never drained: the worker delivers
    // one event, then parks in offer() on the second.
    let sub = rt.subscribe_with(SubscriptionFilter::All, 1, BackpressurePolicy::Block);
    let handle = rt.ingest_handle();
    let tuples: Vec<Tuple> = (0..8).map(|i| Tuple::new(a, vec![Value::Int(i)])).collect();
    handle.push_batch(&tuples).unwrap();
    // Give the worker time to wedge on the full subscription.
    while sub.is_empty() {
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(20));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let dropper = std::thread::spawn(move || {
        drop(rt);
        let _ = done_tx.send(());
    });
    assert!(
        done_rx.recv_timeout(Duration::from_secs(30)).is_ok(),
        "Runtime::drop hung on a worker parked in a full Block subscription"
    );
    dropper.join().unwrap();
    // The event queued before the close is still readable; the pipeline
    // is gone for producers.
    assert_eq!(sub.drain().len(), 1);
    assert!(sub.recv_timeout(Duration::from_millis(1)).is_none());
    assert_eq!(
        handle.push(&tuples[0]),
        Err(IngestError::RuntimeClosed),
        "handles fail fast after the drop"
    );
}

/// Late subscribers only see events published after they subscribe —
/// and handles outliving the runtime fail fast instead of hanging.
#[test]
fn late_subscription_and_closed_runtime() {
    let mut schema = Schema::new();
    let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let tuples: Vec<Tuple> = (0..10)
        .map(|i| Tuple::new(a, vec![Value::Int(i)]))
        .collect();
    let mut rt = Runtime::new(2);
    let q = rt
        .register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(4)))
        .unwrap();
    let handle = rt.ingest_handle();
    handle.push_batch(&tuples[..6]).unwrap();
    rt.drain();
    let late = rt.subscribe(SubscriptionFilter::Query(q));
    handle.push_batch(&tuples[6..]).unwrap();
    rt.drain();
    let events = late.drain();
    assert_eq!(events.len(), 4, "only the post-subscription suffix");
    assert!(events.iter().all(|e| e.position >= 6));
    // recv_timeout drains nothing further and times out cleanly.
    assert!(late.recv_timeout(Duration::from_millis(10)).is_none());
    let stats = rt.shutdown();
    assert_eq!(stats.per_query.len(), 1);
    assert_eq!(stats.per_query[0].1.positions, 10);
    assert_eq!(
        handle.push(&tuples[0]),
        Err(IngestError::RuntimeClosed),
        "handles outliving the runtime fail fast"
    );
}

/// One producer's record of what it pushed: each receipt's stamped
/// start position plus the chunk it covered, enough to reconstruct the
/// nondeterministic global stamped order after the fact.
type ProducerLog = Vec<(u64, Vec<Tuple>)>;

/// Drive `producers` concurrent `IngestHandle`s over disjoint slices of
/// `stream` (chunked by `chunk`), collect every event after `drain()`,
/// and reconstruct the stamped global order from the receipts.
fn concurrent_ingest(
    rt: &mut Runtime,
    stream: &[Tuple],
    producers: usize,
    chunk: usize,
) -> (Vec<MatchEvent>, Vec<Tuple>) {
    let sub = rt.subscribe_with(
        SubscriptionFilter::All,
        usize::MAX,
        BackpressurePolicy::Block,
    );
    let per = stream.len().div_ceil(producers).max(1);
    let logs: Vec<ProducerLog> = std::thread::scope(|scope| {
        let handles: Vec<_> = stream
            .chunks(per)
            .map(|slice| {
                let handle = rt.ingest_handle();
                scope.spawn(move || {
                    let mut log: ProducerLog = Vec::new();
                    for batch in slice.chunks(chunk.max(1)) {
                        let receipt = handle.push_batch(batch).unwrap();
                        assert_eq!(receipt.dropped, 0, "Block never drops");
                        assert_eq!(
                            receipt.positions.end - receipt.positions.start,
                            batch.len() as u64,
                            "receipts stamp exactly the batch"
                        );
                        log.push((receipt.positions.start, batch.to_vec()));
                    }
                    log
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    rt.drain();
    // Rebuild the stamped order: every position must be covered exactly
    // once (gap-free striped reservation).
    let mut stamped: Vec<Option<Tuple>> = vec![None; stream.len()];
    for (start, batch) in logs.into_iter().flatten() {
        for (k, t) in batch.into_iter().enumerate() {
            let slot = &mut stamped[start as usize + k];
            assert!(
                slot.is_none(),
                "position {} stamped twice",
                start as usize + k
            );
            *slot = Some(t);
        }
    }
    let stamped: Vec<Tuple> = stamped
        .into_iter()
        .map(|t| t.expect("every position stamped"))
        .collect();
    (sorted(sub.drain()), stamped)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The striped-sequencer differential: events delivered by a
    /// runtime fed from concurrent producers equal the synchronous
    /// `push_batch` output on the *reconstructed stamped order* — same
    /// positions, same valuations — across shard counts, producer
    /// counts, producer batch sizes, partition modes and both window
    /// kinds. This is the multiset-equivalence guarantee of the
    /// `cer_core::ingest` module docs, checked end to end through the
    /// block reservation, out-of-lock routing and reorder stages.
    #[test]
    fn concurrent_producers_match_sync_on_stamped_order(
        shards_idx in 0..4usize,
        producers in 1..5usize,
        chunk_idx in 0..3usize,
        window_idx in 0..4usize,
        stream_len in 60..240usize,
    ) {
        let shards = [1usize, 2, 4, 8][shards_idx];
        let chunk = [1usize, 7, 32][chunk_idx];
        let mut schema = Schema::new();
        let specs = spec_set(&mut schema);
        // Time windows need a timestamp attribute; attribute 0 of every
        // spec-set relation is an integer. Concurrent producers stamp
        // interleavings that break timestamp monotonicity — exactly the
        // clamp-hazard regime — but sync replay on the *same* stamped
        // order sees the same clamps, so outputs still agree.
        let window = [
            WindowPolicy::Count(4),
            WindowPolicy::Count(1_000),
            WindowPolicy::Time { duration: 6, ts_pos: 0 },
            WindowPolicy::Time { duration: 10_000, ts_pos: 0 },
        ][window_idx].clone();
        let stream = mixed_stream(&schema, stream_len);

        let mut rt = Runtime::new(shards);
        register_all(&mut rt, &specs, &window);
        let (got, stamped) = concurrent_ingest(&mut rt, &stream, producers, chunk);
        drop(rt);

        let want = sync_events(&specs, &window, &stamped, shards);
        prop_assert_eq!(
            got, want,
            "shards={}, producers={}, chunk={}, window={:?}",
            shards, producers, chunk, window
        );
    }

    /// `DropNewest` accounting through the reorder stage: every tuple is
    /// either evaluated (and delivered to the lossless collector) or
    /// counted dropped — by both the receipts and the queue stats — for
    /// tiny capacities including the 0 and 1 edge cases.
    #[test]
    fn drop_newest_accounting_with_tiny_capacities(
        capacity in prop_oneof![Just(0usize), Just(1), Just(2), Just(13), Just(1 << 12)],
        shards in 1..4usize,
        producers in 1..4usize,
    ) {
        let mut schema = Schema::new();
        let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
        let a = schema.relation("A").unwrap();
        let mut rt = Runtime::new(RuntimeConfig::new(shards).with_ingest(IngestConfig {
            queue_capacity: capacity,
            policy: BackpressurePolicy::DropNewest,
            ..IngestConfig::default()
        }));
        let q = rt
            .register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(4)))
            .unwrap();
        let sub = rt.subscribe_with(
            SubscriptionFilter::All,
            usize::MAX,
            BackpressurePolicy::Block,
        );
        let n = 600usize;
        let per = n.div_ceil(producers);
        let receipt_dropped: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let handle = rt.ingest_handle();
                    scope.spawn(move || {
                        let mut dropped = 0u64;
                        for i in 0..per {
                            let t = Tuple::new(a, vec![Value::Int((p * per + i) as i64)]);
                            dropped += handle
                                .push_batch(std::slice::from_ref(&t))
                                .unwrap()
                                .dropped;
                        }
                        dropped
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        rt.drain();
        let events = sub.drain();
        prop_assert!(events.iter().all(|e| e.query == q));
        let stats = rt.stats();
        let queue_dropped: u64 = stats.shard_queues.iter().map(|qs| qs.dropped).sum();
        prop_assert_eq!(queue_dropped, receipt_dropped, "receipts agree with queue stats");
        // A single-atom query fires exactly once per surviving tuple.
        prop_assert_eq!(
            events.len() as u64 + queue_dropped,
            (producers * per) as u64,
            "capacity={} shards={} producers={}",
            capacity, shards, producers
        );
        // Positions stay gap-free even when tuples are shed: dropping
        // happens after stamping.
        prop_assert_eq!(rt.next_position(), (producers * per) as u64);
    }
}

/// The reorder stage is observable under concurrent producers: blocks
/// are staged out of order, held, and released in block order — the
/// stats make that visible, and the ordered release keeps per-query
/// event positions strictly increasing per shard.
#[test]
fn reorder_stage_reports_activity_under_concurrent_producers() {
    let mut schema = Schema::new();
    let pcea = pattern_to_pcea(&mut schema, "A(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let mut rt = Runtime::new(2);
    rt.register(QuerySpec::new("every_a", pcea, WindowPolicy::Count(8)))
        .unwrap();
    let n = 4_000usize;
    std::thread::scope(|scope| {
        for p in 0..4usize {
            let handle = rt.ingest_handle();
            scope.spawn(move || {
                for i in 0..n / 4 {
                    let t = Tuple::new(a, vec![Value::Int((p * n / 4 + i) as i64)]);
                    handle.push(&t).unwrap();
                }
            });
        }
    });
    rt.drain();
    let stats = rt.stats();
    let released: u64 = stats.shard_queues.iter().map(|q| q.reorder_released).sum();
    assert!(released > 0, "tuple blocks flow through the reorder stage");
    assert!(
        stats.shard_queues.iter().all(|q| q.reorder_pending == 0),
        "drained pipeline leaves nothing pending"
    );
    assert!(
        stats.shard_queues.iter().any(|q| q.reorder_high_water >= 1),
        "the reorder buffer held at least one block"
    );
}

//! F1–F4: every figure and worked example of the paper, asserted
//! end-to-end across crates (automata + cq + engine).

use pcea::automata::ccea::paper_c0;
use pcea::automata::pcea::paper_p0;
use pcea::automata::pfa::Pfa;
use pcea::cq::qtree::{NodeLabel, QTree};
use pcea::cq::VarId;
use pcea::prelude::*;

fn val(num_labels: usize, pairs: &[(u32, &[u64])]) -> Valuation {
    let mut v = Valuation::empty(num_labels);
    for (l, ps) in pairs {
        for &p in *ps {
            v.insert(LabelSet::singleton(Label(*l)), p);
        }
    }
    v
}

/// F1 (left): the PFA `P0` of Figure 1 accepts exactly the strings with
/// a `T` and an `S` (any order) before an `R`.
#[test]
fn f1_pfa_p0_language() {
    let p = Pfa::paper_p0();
    let (t, s, r) = (0u32, 1, 2);
    // Exhaustive over strings of length ≤ 5.
    for len in 0..=5usize {
        let count = 3usize.pow(len as u32);
        for mut code in 0..count {
            let mut word = Vec::with_capacity(len);
            for _ in 0..len {
                word.push((code % 3) as u32);
                code /= 3;
            }
            let expected =
                (0..len).any(|k| word[k] == r && word[..k].contains(&t) && word[..k].contains(&s));
            assert_eq!(p.accepts(&word), expected, "word {word:?}");
        }
    }
}

/// F1 (right) + Example 3.3: the PCEA `P0` over `S0` produces exactly
/// ντ0 = {●↦{1,3,5}} and ντ1 = {●↦{0,1,5}} at position 5 — on both the
/// reference semantics and the streaming engine.
#[test]
fn f1_pcea_p0_outputs() {
    let (_, r, s, t) = Schema::sigma0();
    let stream = sigma0_prefix(r, s, t);
    let want = {
        let mut w = vec![val(1, &[(0, &[1, 3, 5])]), val(1, &[(0, &[0, 1, 5])])];
        w.sort();
        w
    };
    // Reference semantics.
    let pcea = paper_p0(r, s, t);
    let eval = ReferenceEval::new(&pcea, &stream);
    assert_eq!(eval.outputs_at(5), want);
    // Streaming engine.
    let results = run_to_end(paper_p0(r, s, t), 100, &stream);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].0, 5);
    let mut got = results[0].1.clone();
    got.sort();
    assert_eq!(got, want);
}

/// Example 2.1: the CCEA `C0` sees only the order-respecting match.
#[test]
fn example_2_1_ccea_c0() {
    let (_, r, s, t) = Schema::sigma0();
    let stream = sigma0_prefix(r, s, t);
    let results = run_to_end(paper_c0(r, s, t).to_pcea(), 100, &stream);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1, vec![val(1, &[(0, &[1, 3, 5])])]);
}

/// F2: the q-tree of Q0 and the equivalence of the compiled automaton
/// with the query on S0.
#[test]
fn f2_qtree_and_compilation_of_q0() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let tree = QTree::build(&q0).unwrap();
    tree.validate_full(&q0).unwrap();
    // Root x; T leaf under x; y under x; S, R leaves under y.
    let root = tree.root();
    assert_eq!(tree.node(root).label, NodeLabel::Var(VarId(0)));
    let y = tree.var_node(VarId(1)).unwrap();
    assert_eq!(tree.node(tree.leaf_of_atom(0)).parent, Some(root));
    assert_eq!(tree.node(tree.leaf_of_atom(1)).parent, Some(y));
    assert_eq!(tree.node(tree.leaf_of_atom(2)).parent, Some(y));

    // Compiled automaton ≡ Q0 on S0 (engine vs t-homomorphism oracle).
    let compiled = compile_hcq(&schema, &q0).unwrap();
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let stream = sigma0_prefix(r, s, t);
    let mut engine = StreamingEvaluator::new(compiled.pcea, 1000);
    for (n, tu) in stream.iter().enumerate() {
        let mut got = engine.push_collect(tu);
        got.sort();
        assert_eq!(got, pcea::cq::hom::new_outputs_at(&q0, &stream, n));
    }
}

/// F3/F4: q-trees and compact q-trees of Q1 and the self-join Q2 match
/// the figures' node counts and shapes.
#[test]
fn f3_f4_qtrees_of_q1_and_q2() {
    let mut s1 = Schema::new();
    let q1 = parse_query(
        &mut s1,
        "Q1(x, y, z, v, w) <- R(x, y, z), S(x, y, v), T(x, w), U(x, y)",
    )
    .unwrap();
    let t1 = QTree::build(&q1).unwrap();
    t1.validate_full(&q1).unwrap();
    assert_eq!(t1.iter().count(), 9, "5 vars + 4 atoms");
    let c1 = t1.compact();
    assert_eq!(c1.iter().count(), 6, "Figure 4: x, y + 4 leaves");

    let mut s2 = Schema::new();
    let q2 = parse_query(&mut s2, "Q2(x, y, z, v) <- R(x, y, z), R(x, y, v), U(x, y)").unwrap();
    let t2 = QTree::build(&q2).unwrap();
    t2.validate_full(&q2).unwrap();
    assert_eq!(t2.iter().count(), 7, "4 vars + 3 atoms");
    let c2 = t2.compact();
    assert_eq!(c2.iter().count(), 4, "Figure 4: one var + 3 leaves");
    assert_eq!(c2.node(c2.root()).children.len(), 3);
}

/// Proposition 3.2 on the paper's own PFA: determinization stays within
/// the `2^n` bound and preserves the language.
#[test]
fn prop_3_2_on_p0() {
    let p = Pfa::paper_p0();
    let d = p.to_dfa();
    assert!(d.num_states() <= 1 << p.num_states());
    for len in 0..=6usize {
        let count = 3usize.pow(len as u32);
        for mut code in 0..count {
            let mut word = Vec::with_capacity(len);
            for _ in 0..len {
                word.push((code % 3) as u32);
                code /= 3;
            }
            assert_eq!(p.accepts(&word), d.accepts(&word));
        }
    }
}

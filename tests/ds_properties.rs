//! Model-based property tests for the enumeration structure `DS_w`.
//!
//! A shadow model tracks, for every node built by a random program of
//! `extend`/`union` operations, the exact bag of valuations it
//! represents. The real structure must then agree with the model under
//! every window, keep its heap/leftist invariants, stay persistent
//! (old roots never change meaning), and survive compaction.

use pcea::engine::ds::{EnumStructure, NodeId, BOTTOM};
use pcea::engine::enumerate::collect_valuations;
use pcea::prelude::*;
use proptest::prelude::*;

/// One step of the random construction program.
#[derive(Clone, Debug)]
enum Op {
    /// Extend with labels ⊆ {0,1}, gathering up to 2 previous roots.
    Extend { labels: u8, picks: Vec<usize> },
    /// Union two previous roots (re-rooted at the melded node).
    Union { a: usize, b: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..4, proptest::collection::vec(any::<usize>(), 0..3))
            .prop_map(|(labels, picks)| Op::Extend { labels, picks }),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Union { a, b }),
    ]
}

/// The shadow model: every root's bag of valuations, window-unfiltered.
struct Model {
    bags: Vec<Vec<Valuation>>,
    /// Position each root was created at (roots are immutable).
    created: Vec<u64>,
}

/// Run a construction program under the structure's contract (the same
/// one unambiguous PCEA guarantee): union operands are consumed linearly
/// (each root melds at most once, as in Algorithm 1), and products only
/// gather roots with pairwise-disjoint position supports — Theorem 5.2's
/// *simplicity* requirement, without which enumeration of overlapping
/// products is undefined.
fn run_program(ops: &[Op]) -> (EnumStructure, Vec<NodeId>, Model) {
    let num_labels = 2usize;
    let mut ds = EnumStructure::new();
    let mut roots: Vec<NodeId> = Vec::new();
    let mut consumed: Vec<bool> = Vec::new();
    // Position support of each root's bag (for the simplicity rule).
    let mut supports: Vec<std::collections::BTreeSet<u64>> = Vec::new();
    let mut model = Model {
        bags: Vec::new(),
        created: Vec::new(),
    };
    let mut pos = 0u64;
    for op in ops {
        match op {
            Op::Extend { labels, picks } => {
                pos += 1;
                let ls = LabelSet(u64::from(*labels) & 0b11);
                let ls = if ls.is_empty() {
                    LabelSet::singleton(Label(0))
                } else {
                    ls
                };
                // Gather existing roots with pairwise-disjoint supports
                // (strictly earlier by construction since positions
                // increase).
                let mut chosen: Vec<usize> = Vec::new();
                let mut support: std::collections::BTreeSet<u64> = std::iter::once(pos).collect();
                for &p in picks {
                    if roots.is_empty() {
                        break;
                    }
                    let k = p % roots.len();
                    if !chosen.contains(&k) && supports[k].is_disjoint(&support) {
                        support.extend(supports[k].iter().copied());
                        chosen.push(k);
                    }
                }
                chosen.sort_unstable();
                let prod: Vec<NodeId> = chosen.iter().map(|&k| roots[k]).collect();
                let node = ds.extend(ls, pos, &prod);
                roots.push(node);
                consumed.push(false);
                supports.push(support);
                // Model: cross product of chosen bags ⊕ ν_{L,pos}.
                let mut bag = vec![Valuation::singleton(num_labels, ls, pos)];
                for &k in &chosen {
                    let mut next = Vec::new();
                    for base in &bag {
                        for v in &model.bags[k] {
                            next.push(base.product(v));
                        }
                    }
                    bag = next;
                }
                model.bags.push(bag);
                model.created.push(pos);
            }
            Op::Union { a, b } => {
                let free: Vec<usize> = (0..roots.len()).filter(|&k| !consumed[k]).collect();
                if free.len() < 2 {
                    continue;
                }
                let ka = free[a % free.len()];
                let kb = free[b % free.len()];
                if ka == kb {
                    continue;
                }
                let node = ds.union(roots[ka], roots[kb], 0);
                consumed[ka] = true;
                consumed[kb] = true;
                roots.push(node);
                consumed.push(false);
                let merged: std::collections::BTreeSet<u64> =
                    supports[ka].union(&supports[kb]).copied().collect();
                supports.push(merged);
                let mut bag = model.bags[ka].clone();
                bag.extend(model.bags[kb].iter().cloned());
                model.bags.push(bag);
                model.created.push(pos);
            }
        }
    }
    (ds, roots, model)
}

fn windowed(bag: &[Valuation], i: u64, w: u64) -> Vec<Valuation> {
    let mut out: Vec<Valuation> = bag
        .iter()
        .filter(|v| v.min_pos().is_none_or(|m| i.saturating_sub(w) <= m))
        .cloned()
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ds_agrees_with_model_under_all_windows(
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let (ds, roots, model) = run_program(&ops);
        let horizon = ops.len() as u64 + 1;
        for (k, &root) in roots.iter().enumerate() {
            ds.check_invariants(root).unwrap();
            for w in [0u64, 1, 2, 5, horizon] {
                let mut got = collect_valuations(&ds, root, horizon, w, 2);
                got.sort();
                let want = windowed(&model.bags[k], horizon, w);
                prop_assert_eq!(&got, &want, "root {} window {}", k, w);
            }
        }
    }

    #[test]
    fn persistence_old_roots_unchanged(
        ops in proptest::collection::vec(op_strategy(), 2..20),
        extra in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        let (mut ds, mut roots, model) = run_program(&ops);
        let horizon = (ops.len() + extra.len()) as u64 + 2;
        // Snapshot the meaning of every existing root.
        let before: Vec<Vec<Valuation>> = roots
            .iter()
            .map(|&r| {
                let mut v = collect_valuations(&ds, r, horizon, horizon, 2);
                v.sort();
                v
            })
            .collect();
        // Apply more operations on top. Fresh extends may reference any
        // old root as a product child; melds take one old root and one
        // fresh singleton (the Algorithm 1 pattern), so no heap cells
        // alias.
        let mut pos = ops.len() as u64 + 1;
        for op in &extra {
            if roots.is_empty() {
                break;
            }
            match op {
                Op::Extend { labels, picks } => {
                    pos += 1;
                    let ls = LabelSet((u64::from(*labels) & 0b11).max(1));
                    let mut prod: Vec<NodeId> = Vec::new();
                    for &p in picks {
                        let n = roots[p % roots.len()];
                        if !n.is_bottom() && !prod.contains(&n) {
                            prod.push(n);
                        }
                    }
                    let n = ds.extend(ls, pos, &prod);
                    roots.push(n);
                }
                Op::Union { a, b } => {
                    pos += 1;
                    let ka = a % roots.len();
                    let fresh = ds.extend(
                        LabelSet::singleton(Label((b % 2) as u32)),
                        pos,
                        &[],
                    );
                    let n = ds.union(roots[ka], fresh, 0);
                    roots.push(n);
                }
            }
        }
        // Old roots still mean exactly what they meant.
        for (k, want) in before.iter().enumerate() {
            let mut got = collect_valuations(&ds, roots[k], horizon, horizon, 2);
            got.sort();
            prop_assert_eq!(&got, want, "root {} changed meaning", k);
        }
        let _ = model;
    }

    #[test]
    fn compaction_is_transparent(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        w in 0u64..8,
    ) {
        let (mut ds, mut roots, _model) = run_program(&ops);
        let horizon = ops.len() as u64 + 1;
        let lo = horizon.saturating_sub(w);
        let before: Vec<Vec<Valuation>> = roots
            .iter()
            .map(|&r| {
                let mut v = collect_valuations(&ds, r, horizon, w, 2);
                v.sort();
                v
            })
            .collect();
        {
            let mut refs: Vec<&mut NodeId> = roots.iter_mut().collect();
            ds.compact(&mut refs, lo);
        }
        for (k, want) in before.iter().enumerate() {
            ds.check_invariants(roots[k]).unwrap();
            let mut got = collect_valuations(&ds, roots[k], horizon, w, 2);
            got.sort();
            prop_assert_eq!(&got, want, "root {} after compaction", k);
        }
        prop_assert!(ds.union(BOTTOM, BOTTOM, lo).is_bottom());
    }
}

//! The serving layer, end to end.
//!
//! * Fuzzes the frame codec: arbitrary bytes, truncations and oversized
//!   length prefixes must come back as wire errors, never a panic.
//! * Round-trips every stable [`ErrorCode`] through the wire encoding
//!   of [`Response::Error`].
//! * The differential guarantee: the matches a client receives over a
//!   socket are exactly the matches an in-process run of the same
//!   stamped stream produces — with two concurrent connections, one
//!   query from each front-end.
//! * Live resharding over the wire: a client moves the server through
//!   several shard layouts mid-ingest without losing or duplicating a
//!   match, and drives the autoscale controller on and off.
//! * Every protocol error path maps to the right [`ErrorCode`] and
//!   leaves the connection usable; framing violations close it.

use pcea::prelude::*;
use pcea::serve::protocol::{
    check_frame_len, decode_message, encode_message, parse_frame, read_frame, write_frame, Request,
    Response, DEFAULT_MAX_FRAME,
};
use pcea::serve::{Client, ClientError, Frontend, ServeConfig, Server};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Collect everything a subscribed client has been pushed, stopping
/// after `quiet` of silence.
fn drain_events(client: &mut Client, quiet: Duration) -> Vec<MatchEvent> {
    let mut out = Vec::new();
    while let Some(ev) = client.next_event(quiet).expect("event stream healthy") {
        out.push(ev);
    }
    out
}

fn event_key(ev: &MatchEvent) -> (u64, String) {
    (ev.position, format!("{:?}", ev.valuation))
}

// ---------------------------------------------------------------------
// Fuzz: the codec survives hostile bytes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Arbitrary bytes through every decode entry point: any outcome
    /// but a panic is acceptable, and `parse_frame` must agree with
    /// `check_frame_len` about the advertised length.
    #[test]
    fn fuzz_codec_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_message::<Request>(&bytes);
        let _ = decode_message::<Response>(&bytes);
        match parse_frame(&bytes, 32) {
            Ok(Some((payload, rest))) => {
                prop_assert!(check_frame_len(payload.len(), 32).is_ok());
                prop_assert_eq!(payload.len() + rest.len() + 4, bytes.len());
            }
            Ok(None) => {} // incomplete prefix — need more bytes
            Err(_) => {}   // empty or oversized length — rejected
        }
    }

    /// Every strict prefix of a valid message encoding fails to decode
    /// (the codec never mistakes a truncation for a message).
    #[test]
    fn fuzz_truncations_are_rejected(cut in 0usize..1000) {
        let msg = Request::SubmitQuery {
            name: "watchdog".into(),
            frontend: Frontend::Pattern,
            text: "T(x) && S(x, y) ; R(x, y)".into(),
            window: WindowPolicy::Time { duration: 60, ts_pos: 0 },
            partition: Some(Partition::ByKey { pos: 1 }),
            gc_every: 512,
        };
        let full = encode_message(&msg).unwrap();
        let cut = cut % full.len();
        prop_assert!(decode_message::<Request>(&full[..cut]).is_err());
    }

    /// A length prefix over the receiver's cap is rejected before any
    /// allocation, whatever the advertised size.
    #[test]
    fn fuzz_oversized_frames_are_rejected(over in 1u64..u32::MAX as u64) {
        let cap = 1024usize;
        let len = (cap as u64 + over).min(u32::MAX as u64) as u32;
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        prop_assert!(parse_frame(&buf, cap).is_err());
    }
}

// ---------------------------------------------------------------------
// Error codes round-trip the wire
// ---------------------------------------------------------------------

#[test]
fn every_error_code_round_trips_the_wire() {
    for &code in ErrorCode::ALL {
        let msg = Response::Error {
            code: code.as_u16(),
            message: format!("synthetic {code}"),
        };
        let bytes = encode_message(&msg).unwrap();
        match decode_message::<Response>(&bytes).unwrap() {
            Response::Error { code: got, message } => {
                assert_eq!(ErrorCode::from_u16(got), Some(code));
                assert!(message.contains(code.name()));
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Differential: socket matches ≡ in-process matches
// ---------------------------------------------------------------------

const HCQ_TEXT: &str = "Q0(x, y) <- T(x), S(x, y), R(x, y)";
const PAT_TEXT: &str = "T(x) ; R(x, _)";

#[test]
fn socket_matches_equal_in_process_matches() {
    // In-process reference: same query texts, same stamped stream.
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, HCQ_TEXT).unwrap();
    let hcq = compile_hcq(&schema, &q0).unwrap();
    let pat = pattern_to_pcea(&mut schema, PAT_TEXT).unwrap();
    let mut reference = Runtime::new(RuntimeConfig::new(2));
    let ref_hcq = reference
        .register(QuerySpec::new("q-hcq", hcq.pcea, WindowPolicy::Count(100)))
        .unwrap();
    let ref_pat = reference
        .register(QuerySpec::new("q-pat", pat.pcea, WindowPolicy::Count(100)))
        .unwrap();
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let stream = sigma0_prefix(r, s, t);
    let expected = reference.push_batch(&stream);
    let expected_hcq: BTreeSet<_> = expected
        .iter()
        .filter(|e| e.query == ref_hcq)
        .map(event_key)
        .collect();
    let expected_pat: BTreeSet<_> = expected
        .iter()
        .filter(|e| e.query == ref_pat)
        .map(event_key)
        .collect();
    assert!(!expected_hcq.is_empty() && !expected_pat.is_empty());
    reference.shutdown();

    // Served: two concurrent connections, one query from each
    // front-end, the same batch stamped by the server's sequencer.
    let server = Server::bind("127.0.0.1:0", ServeConfig::from(RuntimeConfig::new(2))).unwrap();
    let mut conn_hcq = Client::connect(server.local_addr()).unwrap();
    let mut conn_pat = Client::connect(server.local_addr()).unwrap();

    // The HCQ submission declares T, S, R in text order, mirroring the
    // in-process schema, so relation ids agree across both runs.
    let hcq_id = conn_hcq
        .submit_query(
            "q-hcq",
            Frontend::Hcq,
            HCQ_TEXT,
            WindowPolicy::Count(100),
            None,
        )
        .unwrap();
    let pat_id = conn_pat
        .submit_query(
            "q-pat",
            Frontend::Pattern,
            PAT_TEXT,
            WindowPolicy::Count(100),
            None,
        )
        .unwrap();
    assert_eq!(conn_hcq.declare_relation("T", 1).unwrap(), t);
    assert_eq!(conn_hcq.declare_relation("S", 2).unwrap(), s);
    assert_eq!(conn_hcq.declare_relation("R", 2).unwrap(), r);

    conn_hcq
        .subscribe(Some(hcq_id), 1 << 12, BackpressurePolicy::Block)
        .unwrap();
    conn_pat
        .subscribe(Some(pat_id), 1 << 12, BackpressurePolicy::Block)
        .unwrap();

    let (start, end, dropped) = conn_hcq.ingest(stream.clone()).unwrap();
    assert_eq!((start, end, dropped), (0, stream.len() as u64, 0));
    conn_hcq.drain().unwrap();

    // Drain both subscriptions concurrently (the point of two
    // connections: neither blocks the other).
    let collector = std::thread::spawn(move || {
        let got = drain_events(&mut conn_pat, Duration::from_millis(500));
        (conn_pat, got)
    });
    let got_hcq = drain_events(&mut conn_hcq, Duration::from_millis(500));
    let (mut conn_pat, got_pat) = collector.join().unwrap();

    assert!(got_hcq.iter().all(|e| e.query == hcq_id));
    assert!(got_pat.iter().all(|e| e.query == pat_id));
    let got_hcq: BTreeSet<_> = got_hcq.iter().map(event_key).collect();
    let got_pat: BTreeSet<_> = got_pat.iter().map(event_key).collect();
    assert_eq!(got_hcq, expected_hcq);
    assert_eq!(got_pat, expected_pat);

    // Stats reflect the served pipeline.
    let stats = conn_hcq.stats().unwrap();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.next_position, stream.len() as u64);

    // Metrics are checker-valid Prometheus text.
    let text = conn_hcq.metrics_text().unwrap();
    validate_prometheus_text(&text).expect("exposition parses");
    assert!(text.contains("cer_"));

    // A snapshot taken over the wire restores to a runtime that still
    // knows both queries.
    let bytes = conn_pat.snapshot().unwrap();
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    let restored = Runtime::restore_with(&snap, RuntimeConfig::new(1)).unwrap();
    assert_eq!(restored.query_name(hcq_id), Some("q-hcq"));
    assert_eq!(restored.query_name(pat_id), Some("q-pat"));

    conn_hcq.unsubscribe().unwrap();
    conn_pat.unsubscribe().unwrap();
    // One client asks for shutdown; the server's stop path joins every
    // connection and worker.
    conn_hcq.shutdown_server().unwrap();
    server.run_until_shutdown();
}

// ---------------------------------------------------------------------
// Elastic resharding over the wire
// ---------------------------------------------------------------------

/// A client live-reshards the server through several layouts while
/// ingesting a key-partitioned workload; every triple still produces
/// exactly one match, and the autoscale controller can be handed the
/// shard count and taken back off it on the same connection.
#[test]
fn rescale_and_autoscale_over_the_wire() {
    use pcea::common::tuple::tup;

    let server = Server::bind("127.0.0.1:0", ServeConfig::from(RuntimeConfig::new(2))).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let t = client.declare_relation("T", 1).unwrap();
    let s = client.declare_relation("S", 2).unwrap();
    let r = client.declare_relation("R", 2).unwrap();
    // Key-partitioned: rescales must actually move per-key state.
    let q = client
        .submit_query(
            "elastic",
            Frontend::Hcq,
            "Q(x, y) <- T(x), S(x, y), R(x, y)",
            WindowPolicy::Count(1 << 16),
            Some(Partition::ByKey { pos: 0 }),
        )
        .unwrap();
    client
        .subscribe(Some(q), 1 << 14, BackpressurePolicy::Block)
        .unwrap();

    // Four rounds of ingest, each followed by a move to a new layout
    // (grow, shrink to one, grow again, settle). Triples are split so
    // every round leaves open runs for the *next* layout to complete.
    let mut expected = 0u64;
    for (round, shards) in [(0i64, 4usize), (1, 1), (2, 3), (3, 2)] {
        let batch: Vec<Tuple> = (0..120)
            .map(|i| {
                let x = round * 1_000 + i / 3;
                match i % 3 {
                    0 => tup(t, [x]),
                    1 => tup(s, [x, x + 1]),
                    _ => tup(r, [x, x + 1]),
                }
            })
            .collect();
        expected += 40;
        client.ingest(batch).unwrap();
        let (_, to, _) = client.rescale(shards).unwrap();
        assert_eq!(to, shards as u64);
        assert_eq!(client.stats().unwrap().shards, shards as u64);
    }
    client.drain().unwrap();
    let got = drain_events(&mut client, Duration::from_millis(500));
    assert!(got.iter().all(|e| e.query == q));
    assert_eq!(got.len() as u64, expected, "no match lost or duplicated");
    let unique: BTreeSet<_> = got.iter().map(event_key).collect();
    assert_eq!(unique.len() as u64, expected);

    // The moves are visible in the served metrics; the state moved in
    // memory, so the snapshot serializer never ran.
    let text = client.metrics_text().unwrap();
    validate_prometheus_text(&text).expect("exposition parses");
    assert!(text.contains("cer_rescales_total 4"), "{text}");

    // Autoscale control round-trips on the same connection.
    let st = client.autoscale_status().unwrap();
    assert!(!st.enabled, "autoscale starts paused");
    assert_eq!(st.shards, 2);
    assert_eq!(st.rescales, 4);
    let st = client.set_autoscale(true).unwrap();
    assert!(st.enabled);
    let st = client.set_autoscale(false).unwrap();
    assert!(!st.enabled);

    // An invalid shard count is an error, not a dead connection.
    match client.rescale(0) {
        Err(e) => assert_eq!(remote_code(e), Some(ErrorCode::InvalidShardCount)),
        Ok(_) => panic!("rescale(0) must be rejected"),
    }
    client.ping().unwrap();

    client.unsubscribe().unwrap();
    client.shutdown_server().unwrap();
    server.run_until_shutdown();
}

// ---------------------------------------------------------------------
// Error paths: wrong input → the right code, connection survives
// ---------------------------------------------------------------------

fn remote_code(err: ClientError) -> Option<ErrorCode> {
    match err {
        ClientError::Remote { code, .. } => code,
        other => panic!("expected a remote error, got {other}"),
    }
}

#[test]
fn protocol_errors_carry_stable_codes_and_spare_the_connection() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let t = client.declare_relation("T", 1).unwrap();

    // Redeclaring with a different arity is a data error.
    let err = client.declare_relation("T", 3).unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::DuplicateRelation));

    // Ingesting a tuple of the wrong arity never reaches the pipeline.
    let err = client
        .ingest(vec![Tuple::new(t, vec![Value::Int(1), Value::Int(2)])])
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::ArityMismatch));

    // An out-of-schema relation id is caught at the door.
    let bogus = pcea::common::RelationId(404);
    let err = client
        .ingest(vec![Tuple::new(bogus, vec![Value::Int(1)])])
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::UnknownRelation));

    // Unparsable and non-hierarchical queries map to parse/compile.
    let err = client
        .submit_query(
            "bad",
            Frontend::Hcq,
            "not a query",
            WindowPolicy::Count(8),
            None,
        )
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::Parse));
    let err = client
        .submit_query(
            "triangle",
            Frontend::Hcq,
            "Q(x, y, z) <- A(x, y), B(y, z), C(z, x)",
            WindowPolicy::Count(8),
            None,
        )
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::Compile));

    // Subscribing to a query that does not exist.
    let err = client
        .subscribe(Some(QueryId(99)), 16, BackpressurePolicy::Block)
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::UnknownQuery));

    // Unsubscribing without a subscription, then double-subscribing.
    let err = client.unsubscribe().unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::Protocol));
    let q = client
        .submit_query("ok", Frontend::Hcq, HCQ_TEXT, WindowPolicy::Count(8), None)
        .unwrap();
    client
        .subscribe(Some(q), 16, BackpressurePolicy::DropNewest)
        .unwrap();
    let err = client
        .subscribe(Some(q), 16, BackpressurePolicy::DropNewest)
        .unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::Protocol));

    // Deregistering twice: the second is an unknown query.
    client.deregister(q).unwrap();
    let err = client.deregister(q).unwrap_err();
    assert_eq!(remote_code(err), Some(ErrorCode::UnknownQuery));

    // After all of that the connection still answers.
    client.ping().unwrap();
    server.stop();
}

#[test]
fn garbage_frames_get_wire_errors_and_framing_violations_close() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();

    // An unknown request tag inside a well-formed frame: the server
    // answers with a wire error and keeps the connection open.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut raw, &[0xFF, 1, 2, 3]).unwrap();
    let reply = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    match decode_message::<Response>(&reply).unwrap() {
        Response::Error { code, .. } => {
            let code = ErrorCode::from_u16(code).unwrap();
            assert!(matches!(
                code,
                ErrorCode::WireUnsupported | ErrorCode::WireTruncated | ErrorCode::WireCorrupt
            ));
        }
        other => panic!("expected a wire error, got {other:?}"),
    }
    write_frame(&mut raw, &encode_message(&Request::Ping).unwrap()).unwrap();
    let reply = read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap().unwrap();
    assert!(matches!(
        decode_message::<Response>(&reply).unwrap(),
        Response::Pong
    ));

    // A length prefix over the server's cap is a framing violation:
    // the server hangs up rather than allocating.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let mut sink = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(
        raw.read_to_end(&mut sink).unwrap_or(0),
        0,
        "server should hang up"
    );

    server.stop();
}

//! Property tests on the finite-automata layer: random PFA/NFA vs their
//! determinizations (Proposition 3.2), minimization, and the run-tree
//! semantics.

use pcea::automata::{Dfa, Nfa, Pfa};
use proptest::prelude::*;

/// A random PFA over alphabet {0,1,2} with ≤ 5 states.
fn pfa_strategy() -> impl Strategy<Value = Pfa> {
    let transitions = proptest::collection::vec(
        (
            proptest::collection::vec(0usize..5, 1..3), // sources (non-empty)
            0u32..3,                                    // symbol
            0usize..5,                                  // target
        ),
        0..12,
    );
    let initials = proptest::collection::vec(0usize..5, 0..3);
    let finals = proptest::collection::vec(0usize..5, 1..3);
    (transitions, initials, finals).prop_map(|(ts, is, fs)| {
        let mut p = Pfa::new(5);
        for (srcs, a, q) in ts {
            p.add_transition(srcs, a, q);
        }
        for i in is {
            p.add_initial(i);
        }
        for f in fs {
            p.add_final(f);
        }
        p
    })
}

fn nfa_strategy() -> impl Strategy<Value = Nfa> {
    let transitions = proptest::collection::vec((0usize..4, 0u32..2, 0usize..4), 0..10);
    let initials = proptest::collection::vec(0usize..4, 1..3);
    let finals = proptest::collection::vec(0usize..4, 1..3);
    (transitions, initials, finals).prop_map(|(ts, is, fs)| {
        let mut n = Nfa::new(4);
        for (p, a, q) in ts {
            n.add_transition(p, a, q);
        }
        for i in is {
            n.add_initial(i);
        }
        for f in fs {
            n.add_final(f);
        }
        n
    })
}

fn words(alphabet: u32, max_len: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for a in 0..alphabet {
                let mut v = w.clone();
                v.push(a);
                out.push(v.clone());
                next.push(v);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Prop 3.2: subset simulation ≡ determinized DFA ≡ explicit run
    /// trees, and the 2^n bound holds.
    #[test]
    fn pfa_determinization_equivalent(p in pfa_strategy()) {
        let d = p.to_dfa();
        prop_assert!(d.num_states() <= 1usize << p.num_states());
        for w in words(3, 4) {
            let by_sim = p.accepts(&w);
            prop_assert_eq!(by_sim, d.accepts(&w), "word {:?}", &w);
            let by_trees = !p.run_trees(&w).is_empty();
            prop_assert_eq!(by_sim, by_trees, "trees on {:?}", &w);
        }
    }

    /// NFA determinization + minimization preserve the language, and
    /// minimization never grows the automaton.
    #[test]
    fn nfa_determinize_minimize(n in nfa_strategy()) {
        let d = n.to_dfa();
        let m = d.minimize();
        prop_assert!(m.num_states() <= d.num_states());
        for w in words(2, 6) {
            prop_assert_eq!(n.accepts(&w), d.accepts(&w), "dfa on {:?}", &w);
            prop_assert_eq!(d.accepts(&w), m.accepts(&w), "min on {:?}", &w);
        }
    }

    /// Minimization is idempotent (a canonical form).
    #[test]
    fn minimization_idempotent(n in nfa_strategy()) {
        let m = n.to_dfa().minimize();
        let mm = m.minimize();
        prop_assert_eq!(m.num_states(), mm.num_states());
    }

    /// NFA→PFA embedding preserves the language.
    #[test]
    fn nfa_embeds_into_pfa(n in nfa_strategy()) {
        let p = Pfa::from_nfa(&n);
        for w in words(2, 5) {
            prop_assert_eq!(n.accepts(&w), p.accepts(&w), "word {:?}", &w);
        }
    }
}

/// Deterministic regression: the paper's P0 determinizes to ≤ 2^5 states
/// and minimizes to the canonical automaton of "T and S before an R".
#[test]
fn p0_determinization_canonical() {
    let p = Pfa::paper_p0();
    let d = p.to_dfa();
    let m = d.minimize();
    assert!(d.num_states() <= 32);
    // Canonical: track {seen T?, seen S?} then accept-sink: 5 states.
    assert_eq!(m.num_states(), 5);
    let _ = Dfa::determinize(vec![0], &[0], |_, _| vec![0], |_| true);
}

//! Time-based sliding windows: the engine extension for CER-style
//! timestamp windows on top of the paper's count windows.
//!
//! Ground truth is the reference semantics with a per-output check: a
//! match qualifies iff the timestamp of its earliest tuple is within
//! `duration` of the completing tuple's timestamp.

use pcea::automata::pcea::paper_p0;
use pcea::common::tuple::tup;
use pcea::engine::evaluator::WindowPolicy;
use pcea::prelude::*;

/// Build a σ0 stream with explicit timestamps in an extra leading burst
/// pattern: we reuse σ0 relations but treat attribute 0 of T and
/// attribute 0 of S/R as the join key; timestamps are synthesized
/// per-position for the oracle.
fn q0_engine() -> (Schema, Pcea) {
    let mut schema = Schema::new();
    // TS-carrying variants: first attribute is the timestamp.
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    (schema, pcea)
}

#[test]
fn time_window_expires_by_timestamp_not_position() {
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    // Timestamps: A@t=0, then a B@t=5 (in a 10-window), then a B@t=100
    // (expired for the A), then A@t=101, B@t=103.
    let stream = [
        tup(a, [0i64, 7]),
        tup(b, [5i64, 7]),
        tup(b, [100i64, 7]),
        tup(a, [101i64, 7]),
        tup(b, [103i64, 7]),
    ];
    let mut engine = StreamingEvaluator::new_timed(pcea, 10, 0);
    let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
    // pos1: A(0)×B(5) ✓. pos2: A(0) expired (100-0 > 10): 0 matches.
    // pos3: no match yet (A completes nothing alone... A(101) joins
    // B(100): within 10 ✓ → 1. pos4: B(103) joins A(101) ✓ 1 — and
    // B(100)? A(101)×B(100)... the engine outputs at the *completing*
    // tuple; at pos 3 the completing tuple is A(101) joining B(100).
    assert_eq!(counts, vec![0, 1, 0, 1, 1]);
}

#[test]
fn zero_duration_keeps_only_simultaneous() {
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream = [
        tup(a, [7i64, 1]),
        tup(b, [7i64, 1]), // same timestamp: allowed
        tup(b, [8i64, 1]), // one tick later: the A expired
    ];
    let mut engine = StreamingEvaluator::new_timed(pcea, 0, 0);
    let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
    assert_eq!(counts, vec![0, 1, 0]);
}

#[test]
fn out_of_order_timestamps_are_clamped_monotone() {
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream = [
        tup(a, [100i64, 1]),
        tup(b, [40i64, 1]), // stale clock: clamped to 100 → still joins
    ];
    let mut engine = StreamingEvaluator::new_timed(pcea, 10, 0);
    let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
    assert_eq!(counts, vec![0, 1]);
}

#[test]
fn huge_time_window_equals_count_window() {
    // With duration covering the whole stream, time and count windows
    // agree (both unrestricted).
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream: Vec<Tuple> = (0..40)
        .map(|i| {
            let rel = if i % 2 == 0 { a } else { b };
            tup(rel, [i as i64, (i % 3) as i64])
        })
        .collect();
    let mut timed = StreamingEvaluator::new_timed(pcea.clone(), i64::MAX / 2, 0);
    let mut counted = StreamingEvaluator::new(pcea, u64::MAX / 2);
    for t in &stream {
        let mut x = timed.push_collect(t);
        let mut y = counted.push_collect(t);
        x.sort();
        y.sort();
        assert_eq!(x, y);
    }
}

#[test]
fn time_window_on_paper_p0_with_position_timestamps() {
    // When every tuple's timestamp equals its position, Time{d} and
    // Count(d) coincide. σ0 tuples carry no timestamp attribute, so
    // check the equivalent: a derived stream with ts = position.
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream: Vec<Tuple> = (0..60)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            tup(rel, [i as i64, (i % 2) as i64])
        })
        .collect();
    for d in [0u64, 3, 7, 20] {
        let mut timed = StreamingEvaluator::new_timed(pcea.clone(), d as i64, 0);
        let mut counted = StreamingEvaluator::new(pcea.clone(), d);
        for t in &stream {
            assert_eq!(timed.push_count(t), counted.push_count(t), "d={d}");
        }
    }
    // And the policy accessor reports what was configured.
    let timed = StreamingEvaluator::new_timed(paper_p0_over(&schema), 5, 0);
    assert_eq!(
        timed.window(),
        &WindowPolicy::Time {
            duration: 5,
            ts_pos: 0
        }
    );
}

fn paper_p0_over(_schema: &Schema) -> Pcea {
    let (_, r, s, t) = Schema::sigma0();
    paper_p0(r, s, t)
}

#[test]
#[should_panic(expected = "timestamp")]
fn missing_timestamp_panics_with_context() {
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let mut engine = StreamingEvaluator::new_timed(pcea, 10, 5); // bad ts_pos
    engine.push(&tup(a, [0i64, 7]));
}

/// A contract-violating stream (out-of-order timestamps) is *detected*:
/// the clamp that keeps the clock monotone counts every regression into
/// `EngineStats::ts_regressions`, aggregated across shards in
/// `RuntimeStats` — the operator's signal that under `ByKey` sharding
/// outputs may have become shard-count-dependent (see the hazard note
/// in `cer_core::window`).
#[test]
fn ts_regressions_surface_in_engine_and_runtime_stats() {
    let (schema, pcea) = q0_engine();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    // Timestamps regress twice (10 → 4, 12 → 3).
    let stream = [
        tup(a, [10i64, 7]),
        tup(b, [4i64, 7]),
        tup(b, [12i64, 7]),
        tup(a, [3i64, 7]),
        tup(b, [13i64, 7]),
    ];
    let mut engine = StreamingEvaluator::new_timed(pcea.clone(), 10, 0);
    for t in &stream {
        engine.push(t);
    }
    assert_eq!(engine.stats().ts_regressions, 2);
    // A compliant stream reports zero.
    let mut clean = StreamingEvaluator::new_timed(pcea.clone(), 10, 0);
    for ts in [1i64, 2, 5, 9] {
        clean.push(&tup(a, [ts, 7]));
    }
    assert_eq!(clean.stats().ts_regressions, 0);
    // Through the runtime: each key-partitioned shard replica owns its
    // own clock, so the aggregate depends on how the violating stream
    // sharded — the counter must be non-zero whenever any clock clamped.
    assert!(pcea.supports_key_partition(1));
    for shards in [1usize, 2, 4] {
        let mut rt = Runtime::new(shards);
        rt.register(
            QuerySpec::new(
                "timed_keyed",
                pcea.clone(),
                WindowPolicy::Time {
                    duration: 10,
                    ts_pos: 0,
                },
            )
            .with_partition(Partition::ByKey { pos: 1 }),
        )
        .unwrap();
        rt.push_batch(&stream);
        let stats = rt.stats();
        assert!(
            stats.ts_regressions() > 0,
            "shards={shards}: the violation must be visible to operators"
        );
    }
}

//! E8/E9: the expressiveness separations of the paper, made executable.
//!
//! * Proposition 3.4 (E8): PCEA ⊋ CCEA — the appendix's witness-stream
//!   family distinguishes the PCEA `P0` from every small CCEA attempt,
//!   and concretely from the paper's `C0`.
//! * Theorem 4.2 (E9): acyclic non-hierarchical CQs are rejected by the
//!   compiler with the right diagnosis, while every hierarchical query
//!   compiles and matches its oracle.

use pcea::automata::ccea::{paper_c0, Ccea};
use pcea::automata::pcea::paper_p0;
use pcea::common::tuple::tup;
use pcea::cq::compile::CompileError;
use pcea::cq::{is_acyclic, is_hierarchical};
use pcea::prelude::*;

/// Proposition 3.4's stream family: `S_i = R(0,i), T(0), S(0,i), …`. The
/// PCEA `P0` accepts on every `S_i`; a CCEA that agreed on all `S_i`
/// would also accept the mixed stream `S_{j←k} = R(0,j), T(0), S(0,k)`,
/// which `P0` rejects. We verify the two concrete halves of that
/// argument.
#[test]
fn e8_pcea_strictly_more_expressive_than_ccea() {
    let (_, r, s, t) = Schema::sigma0();
    let p0 = paper_p0(r, s, t);

    // (a) P0 accepts on every S_i: R(0,i) T(0) S(0,i) completes at the S.
    for i in 0..6i64 {
        let stream = vec![tup(r, [0i64, i]), tup(t, [0i64]), tup(s, [0i64, i])];
        // The automaton's final transition reads R — on this ordering the
        // run completes when the *R* is last; reorder so R is last:
        let stream2 = [tup(t, [0i64]), tup(s, [0i64, i]), tup(r, [0i64, i])];
        let total: usize = {
            let mut e = StreamingEvaluator::new(p0.clone(), 100);
            stream2.iter().map(|tu| e.push_count(tu)).sum()
        };
        assert_eq!(total, 1, "P0 accepts on S_{i}");
        // And on the appendix ordering (R first), P0 *also* accepts
        // because parallelization starts branches independently — but
        // only via a different automaton orientation; the R-last check
        // above is the one C0 can also attempt.
        let _ = stream;
    }

    // (b) The mixed stream: T(0), S(0,k), R(0,j) with j ≠ k must be
    // rejected by P0 (the S branch key (0,k) ≠ R's (0,j)).
    let mixed = [tup(t, [0i64]), tup(s, [0i64, 7]), tup(r, [0i64, 9])];
    let total: usize = {
        let mut e = StreamingEvaluator::new(p0.clone(), 100);
        mixed.iter().map(|tu| e.push_count(tu)).sum()
    };
    assert_eq!(total, 0, "P0 rejects the mixed stream");

    // (c) A CCEA sees tuples in chain order only: on the stream
    // S(2,11), T(2), R(2,11) (S before T), P0 matches but C0 cannot.
    let swapped = [tup(s, [2i64, 11]), tup(t, [2i64]), tup(r, [2i64, 11])];
    let p_total: usize = {
        let mut e = StreamingEvaluator::new(p0, 100);
        swapped.iter().map(|tu| e.push_count(tu)).sum()
    };
    let c_total: usize = {
        let mut e = StreamingEvaluator::new(paper_c0(r, s, t).to_pcea(), 100);
        swapped.iter().map(|tu| e.push_count(tu)).sum()
    };
    assert_eq!(p_total, 1);
    assert_eq!(c_total, 0, "C0 misses the out-of-order match");
}

/// Every CCEA is a PCEA (the inclusion side of Proposition 3.4): the
/// embedding preserves outputs on random streams.
#[test]
fn e8_ccea_embeds_into_pcea() {
    use pcea::common::gen::Sigma0Gen;
    let (_, r, s, t) = Schema::sigma0();
    let ccea = paper_c0(r, s, t);
    let mut gen = Sigma0Gen::new(r, s, t, 17).with_domains(3, 3);
    let stream: Vec<Tuple> = (0..60).map(|_| gen.next_tuple().unwrap()).collect();
    let embedded = ccea.to_pcea();
    let eval = ReferenceEval::new(&embedded, &stream);
    // The streaming engine on the embedded automaton agrees with the
    // reference at every position.
    let mut engine = StreamingEvaluator::new(ccea.to_pcea(), 20);
    for (n, tu) in stream.iter().enumerate() {
        let mut got = engine.push_collect(tu);
        got.sort();
        got.dedup();
        assert_eq!(got, eval.windowed_outputs_at(n, 20), "position {n}");
    }
}

/// Theorem 4.2 (E9): the classification table — hierarchical compiles,
/// acyclic-not-hierarchical is provably inexpressible, cyclic is beyond
/// acyclic CQs altogether.
#[test]
fn e9_compiler_classification() {
    let cases: &[(&str, Result<(), CompileError>)] = &[
        // Hierarchical: compile.
        ("Q(x, y) <- T(x), S(x, y), R(x, y)", Ok(())),
        ("Q(x, y, z) <- R(x, y), S(y, z)", Ok(())),
        ("Q(x) <- T(x), T(x)", Ok(())),
        ("Q(x, y) <- T(x), U(y)", Ok(())),
        // Acyclic but not hierarchical: Theorem 4.2.
        (
            "Q(x, y) <- R(x), S(x, y), T(y)",
            Err(CompileError::NotHierarchical { acyclic: true }),
        ),
        (
            "Q(x, y, z, w) <- R(x, y), S(y, z), T(z, w)",
            Err(CompileError::NotHierarchical { acyclic: true }),
        ),
        (
            "Q(x, y) <- T(x), R(x, y), S(2, y), T(x)", // the paper's Q1
            Err(CompileError::NotHierarchical { acyclic: true }),
        ),
        // Cyclic.
        (
            "Q(x, y, z) <- R(x, y), S(y, z), T(z, x)",
            Err(CompileError::NotHierarchical { acyclic: false }),
        ),
        // Projection.
        ("Q(x) <- S(x, y)", Err(CompileError::NotFull)),
    ];
    for (text, expected) in cases {
        let mut schema = Schema::new();
        let q = parse_query(&mut schema, text).unwrap();
        let got = compile_hcq(&schema, &q).map(|_| ());
        assert_eq!(&got, expected, "{text}");
        // The diagnosis agrees with the standalone classifiers.
        match expected {
            Ok(()) => assert!(is_hierarchical(&q), "{text}"),
            Err(CompileError::NotHierarchical { acyclic }) => {
                assert!(!is_hierarchical(&q), "{text}");
                assert_eq!(is_acyclic(&q), *acyclic, "{text}");
            }
            Err(_) => {}
        }
    }
}

/// PCEA go beyond CQ: the sequenced pattern "T and S before R" has no CQ
/// equivalent (CQs are order-blind). We witness the difference: the
/// compiled Q0 automaton matches regardless of order, while P0 requires
/// the R last.
#[test]
fn e9_pcea_beyond_cq_order_sensitivity() {
    let (_, r, s, t) = Schema::sigma0();
    // R arrives first: a database view has all three tuples, so Q0
    // matches; P0 (R must be last) does not.
    let stream = [tup(r, [2i64, 11]), tup(t, [2i64]), tup(s, [2i64, 11])];

    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    // Careful: parse_query interned fresh relation ids in `schema`; drive
    // the compiled automaton with tuples over *its* ids.
    let (r2, s2, t2) = (
        schema.relation("R").unwrap(),
        schema.relation("S").unwrap(),
        schema.relation("T").unwrap(),
    );
    let stream_q = [tup(r2, [2i64, 11]), tup(t2, [2i64]), tup(s2, [2i64, 11])];
    let compiled = compile_hcq(&schema, &q0).unwrap();
    let q_total: usize = {
        let mut e = StreamingEvaluator::new(compiled.pcea, 100);
        stream_q.iter().map(|tu| e.push_count(tu)).sum()
    };
    let p_total: usize = {
        let mut e = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        stream.iter().map(|tu| e.push_count(tu)).sum()
    };
    assert_eq!(q_total, 1, "the CQ is order-blind");
    assert_eq!(p_total, 0, "the sequenced PCEA demands R last");
}

/// A tiny brute-force instance of the Proposition 3.4 argument: no
/// 1-state-per-step CCEA over σ0 using only the relation-test unary
/// predicates and (Sxy,Rxy)/(Tx,Rxy)-style keys reproduces P0 on both
/// orderings. (The full proposition quantifies over all CCEA; here we
/// check the natural finite candidate space.)
#[test]
fn e8_no_small_ccea_candidate_matches_p0() {
    use pcea::automata::predicate::{EqPredicate, UnaryPredicate};
    let (_, r, s, t) = Schema::sigma0();
    let order_a = vec![tup(t, [0i64]), tup(s, [0i64, 1]), tup(r, [0i64, 1])];
    let order_b = vec![tup(s, [0i64, 1]), tup(t, [0i64]), tup(r, [0i64, 1])];
    let dot = LabelSet::singleton(Label(0));

    // Candidates: chains q0 -U1-> q1 -U2-> q2 over permutations of
    // {T, S} followed by R, with the natural equality keys.
    let candidates = [(t, s), (s, t)];
    for (first, second) in candidates {
        let mut c = Ccea::new(3, 1);
        c.set_initial(StateId(0), UnaryPredicate::Relation(first), dot);
        c.add_transition(
            StateId(0),
            UnaryPredicate::Relation(second),
            EqPredicate::on_positions(first, [0usize], second, [0usize]),
            dot,
            StateId(1),
        );
        c.add_transition(
            StateId(1),
            UnaryPredicate::Relation(r),
            EqPredicate::on_positions(second, [0usize], r, [0usize]),
            dot,
            StateId(2),
        );
        c.mark_final(StateId(2));
        let count = |stream: &[Tuple]| -> usize {
            let mut e = StreamingEvaluator::new(c.to_pcea(), 100);
            stream.iter().map(|tu| e.push_count(tu)).sum()
        };
        let (a, b) = (count(&order_a), count(&order_b));
        assert!(
            !(a == 1 && b == 1),
            "a chain fixed to ({first:?},{second:?}) cannot accept both orders"
        );
    }
    // P0 accepts both orders.
    let count_p0 = |stream: &[Tuple]| -> usize {
        let mut e = StreamingEvaluator::new(paper_p0(r, s, t), 100);
        stream.iter().map(|tu| e.push_count(tu)).sum()
    };
    assert_eq!(count_p0(&order_a), 1);
    assert_eq!(count_p0(&order_b), 1);
}

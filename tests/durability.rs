//! Crash-recovery semantics of the durability subsystem
//! (`cer_core::durability`): position-stamped WAL, incremental disk
//! checkpoints, `Runtime::recover`.
//!
//! The core property is differential: run durably, crash (drop the
//! runtime and cut the on-disk WAL at an arbitrary byte offset — torn
//! tails included), recover, and push the rest of the stream. The
//! recovered run's continuation must be multiset-identical to an
//! uninterrupted runtime's events at positions ≥ the recovered
//! position. A cut is a *prefix* of the logged operation sequence, so
//! even a cut landing inside the query-registration records is a valid
//! crash: recovery then yields a runtime knowing only a prefix of the
//! queries, and the oracle is built from that same prefix.

use pcea::prelude::*;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per call; removed by `Scratch::drop` on
/// success, left behind for inspection when the test panics first.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cer-durability-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Deterministic dense stream over all relations of `schema` (same
/// shape as `checkpoint_restore.rs`).
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

fn sorted(mut events: Vec<MatchEvent>) -> Vec<MatchEvent> {
    events.sort();
    events
}

/// Front-end-compiled spec set: HCQ compiler and pattern language, both
/// partition modes — the surface every WAL record kind must carry.
fn spec_set(schema: &mut Schema) -> Vec<(String, Pcea, Partition)> {
    let q0 = parse_query(schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(schema, &q0).unwrap().pcea;
    let star = parse_query(schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(schema, "A(x) ; B(x)").unwrap().pcea;
    vec![
        ("q0_pinned".into(), q0_pcea.clone(), Partition::ByQuery),
        ("q0_keyed".into(), q0_pcea, Partition::ByKey { pos: 0 }),
        ("star_pinned".into(), star_pcea, Partition::ByQuery),
        ("pat_keyed".into(), pat, Partition::ByKey { pos: 0 }),
    ]
}

fn register_all(
    rt: &mut Runtime,
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
) -> Vec<QueryId> {
    specs
        .iter()
        .map(|(name, pcea, partition)| {
            rt.register(
                QuerySpec::new(name.clone(), pcea.clone(), window.clone())
                    .with_partition(*partition),
            )
            .unwrap()
        })
        .collect()
}

/// Uninterrupted reference: one in-memory runtime sees the whole stream.
fn uninterrupted(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    shards: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards);
    register_all(&mut rt, specs, window);
    sorted(rt.push_batch(stream))
}

/// Small segments force frequent rolls; a short full-checkpoint period
/// exercises the delta chain.
fn durable_config(shards: usize, fsync: FsyncPolicy) -> RuntimeConfig {
    RuntimeConfig::new(shards).with_durability(DurabilityConfig {
        fsync,
        segment_bytes: 2 << 10,
        full_checkpoint_every: 2,
    })
}

/// WAL segment files of `dir/wal` in sequence order (the hex-encoded
/// first_seq file name makes lexical order sequence order).
fn wal_files(data_dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(data_dir.join("wal"))
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    files.sort();
    files
}

fn wal_bytes_total(data_dir: &Path) -> u64 {
    wal_files(data_dir)
        .iter()
        .map(|p| std::fs::metadata(p).expect("segment metadata").len())
        .sum()
}

/// Simulate the crash's disk state: keep only the first `keep` bytes of
/// the WAL's global (sequence-ordered) byte stream — truncate the
/// straddling segment, delete everything after it. Any `keep` is a
/// physically reachable crash state because segments are written
/// strictly in order.
fn cut_wal(data_dir: &Path, mut keep: u64) {
    let mut truncated = false;
    for path in wal_files(data_dir) {
        if truncated {
            std::fs::remove_file(&path).expect("remove lost segment");
            continue;
        }
        let len = std::fs::metadata(&path).expect("segment metadata").len();
        if keep >= len {
            keep -= len;
        } else {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .expect("open segment for truncation");
            file.set_len(keep).expect("truncate segment");
            truncated = true;
        }
    }
}

/// The differential core: durable run (optionally checkpointing at
/// `checkpoint_at`), crash, cut the WAL to `keep` of `total` bytes
/// (per-mille), recover, continue. Returns the recovered position.
#[allow(clippy::too_many_arguments)]
fn crash_and_check(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    checkpoint_at: Option<usize>,
    shards: usize,
    fsync: FsyncPolicy,
    keep_per_mille: u64,
    ctx: &str,
) -> u64 {
    let scratch = Scratch::new("diff");
    let config = durable_config(shards, fsync);
    let mut rt = Runtime::open_durable(scratch.path(), config).expect("open_durable fresh");
    register_all(&mut rt, specs, window);
    let mut fed = 0usize;
    if let Some(at) = checkpoint_at {
        for batch in stream[..at].chunks(17) {
            rt.push_batch(batch);
        }
        fed = at;
        let stats = rt.checkpoint().expect("checkpoint");
        assert_eq!(stats.position, at as u64, "{ctx}: checkpoint at the cut");
    }
    for batch in stream[fed..].chunks(17) {
        rt.push_batch(batch);
    }
    drop(rt); // the crash: nothing graceful survives but the disk

    let total = wal_bytes_total(scratch.path());
    let keep = total * keep_per_mille / 1000;
    cut_wal(scratch.path(), keep);

    let mut rt2 = Runtime::recover(scratch.path(), config).expect("recover");
    let r = rt2.next_position();
    assert!(r as usize <= stream.len(), "{ctx}: position within stream");
    if let Some(at) = checkpoint_at {
        assert!(
            r >= at as u64,
            "{ctx}: checkpointed prefix can never be lost (R={r} < {at})"
        );
    }
    // The cut is an operation-sequence prefix: registrations happen
    // first, so the recovered runtime knows the first `known` specs.
    let known = rt2.num_queries();
    assert!(known <= specs.len(), "{ctx}");
    if r > 0 || checkpoint_at.is_some() {
        assert_eq!(known, specs.len(), "{ctx}: batches imply all registers");
    }
    let want_all = uninterrupted(&specs[..known], window, stream, shards);
    let want: Vec<MatchEvent> = want_all
        .iter()
        .filter(|e| e.position >= r)
        .cloned()
        .collect();
    let got = sorted(rt2.push_batch(&stream[r as usize..]));
    assert_eq!(got, want, "{ctx}: continuation diverged (R={r})");
    r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    /// The acceptance property: arbitrary WAL cut point (torn tails
    /// included), shard count, window, fsync policy, with and without
    /// an intervening checkpoint — recovery's continuation is
    /// multiset-identical to never having crashed.
    #[test]
    fn crash_recovery_differential(
        keep_per_mille in 0u64..1001,
        shards in 1usize..5,
        w in prop_oneof![Just(3u64), Just(16), Just(1000)],
        fsync in prop_oneof![
            Just(FsyncPolicy::Always),
            Just(FsyncPolicy::EveryN(4)),
            Just(FsyncPolicy::EveryN(256)),
            Just(FsyncPolicy::IntervalMs(5)),
        ],
        checkpoint_at in prop_oneof![Just(None), Just(Some(40usize)), Just(Some(85usize))],
    ) {
        let mut schema = Schema::new();
        let specs = spec_set(&mut schema);
        let stream = mixed_stream(&schema, 120);
        let window = WindowPolicy::Count(w);
        crash_and_check(
            &specs,
            &window,
            &stream,
            checkpoint_at,
            shards,
            fsync,
            keep_per_mille,
            &format!("keep={keep_per_mille}‰ shards={shards} w={w} ckpt={checkpoint_at:?}"),
        );
    }
}

/// Time windows go through the same machinery: recovery must rebuild
/// the per-shard window clocks exactly.
#[test]
fn crash_recovery_differential_time_windows() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let specs = vec![
        ("timed_pinned".to_string(), pcea.clone(), Partition::ByQuery),
        ("timed_keyed".to_string(), pcea, Partition::ByKey { pos: 1 }),
    ];
    let stream: Vec<Tuple> = (0..200)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(
                rel,
                vec![Value::Int(i as i64 / 2), Value::Int((i % 3) as i64)],
            )
        })
        .collect();
    let window = WindowPolicy::Time {
        duration: 25,
        ts_pos: 0,
    };
    for keep_per_mille in [0u64, 313, 700, 999, 1000] {
        crash_and_check(
            &specs,
            &window,
            &stream,
            Some(60),
            3,
            FsyncPolicy::EveryN(8),
            keep_per_mille,
            &format!("time windows, keep={keep_per_mille}‰"),
        );
    }
}

/// Every replayable operation kind in one log: register → ingest →
/// checkpoint → ingest → deregister → replace → rescale (which rolls
/// the segment) → ingest → crash → recover → continue. The chained
/// scenario from the issue, end to end.
#[test]
fn chained_checkpoint_wal_rescale_recover() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 300);
    let window = WindowPolicy::Count(40);
    let scratch = Scratch::new("chained");
    let config = durable_config(2, FsyncPolicy::EveryN(16));

    let mut rt = Runtime::open_durable(scratch.path(), config).expect("open_durable");
    let ids = register_all(&mut rt, &specs, &window);
    rt.push_batch(&stream[..100]);
    let stats = rt.checkpoint().expect("first checkpoint");
    assert_eq!(stats.position, 100);
    assert!(stats.full, "first checkpoint of a chain is full");
    rt.push_batch(&stream[100..160]);
    rt.deregister(ids[2]).unwrap();
    // Recompile the same query from source: the replace must replay too.
    let mut schema2 = Schema::new();
    let fresh = spec_set(&mut schema2);
    rt.replace(
        ids[0],
        QuerySpec::new("q0_v2", fresh[0].1.clone(), window.clone()).with_partition(fresh[0].2),
    )
    .unwrap();
    rt.rescale(4).expect("rescale");
    assert_eq!(rt.num_shards(), 4);
    rt.push_batch(&stream[160..240]);
    let status = rt.durability_status().expect("durable");
    assert!(status.healthy);
    assert_eq!(status.last_checkpoint_position, Some(100));
    drop(rt); // crash

    let mut rt2 = Runtime::recover(scratch.path(), config).expect("recover");
    assert_eq!(rt2.next_position(), 240, "flushed tail fully recovered");
    assert_eq!(rt2.num_queries(), specs.len() - 1);
    assert_eq!(rt2.query_name(ids[0]), Some("q0_v2"), "replace replayed");
    assert_eq!(
        rt2.deregister(ids[2]),
        Err(RuntimeError::UnknownQuery { id: ids[2] }),
        "deregister replayed"
    );

    // Oracle: the same op sequence, uninterrupted and in memory.
    let mut oracle = Runtime::new(2);
    let oids = register_all(&mut oracle, &specs, &window);
    let mut want = oracle.push_batch(&stream[..160]);
    oracle.deregister(oids[2]).unwrap();
    let mut schema3 = Schema::new();
    let fresh3 = spec_set(&mut schema3);
    oracle
        .replace(
            oids[0],
            QuerySpec::new("q0_v2", fresh3[0].1.clone(), window.clone())
                .with_partition(fresh3[0].2),
        )
        .unwrap();
    oracle.rescale(4).expect("oracle rescale");
    want.extend(oracle.push_batch(&stream[160..]));
    let want: Vec<MatchEvent> = sorted(want)
        .into_iter()
        .filter(|e| e.position >= 240)
        .collect();
    let got = sorted(rt2.push_batch(&stream[240..]));
    assert_eq!(got, want, "post-recovery continuation");

    // A second checkpoint on the recovered runtime truncates the log.
    let stats2 = rt2.checkpoint().expect("second checkpoint");
    assert_eq!(stats2.position, 300);
    assert!(stats2.wal_segments_removed > 0, "covered segments truncate");
    let status2 = rt2.durability_status().expect("durable");
    assert_eq!(status2.last_checkpoint_position, Some(300));
}

/// `recover` is strict: a directory with neither a manifest nor WAL
/// segments is an operator error, while `open_durable` initializes it.
#[test]
fn recover_refuses_empty_dir_open_durable_initializes() {
    let scratch = Scratch::new("strict");
    let config = durable_config(1, FsyncPolicy::Always);
    assert_eq!(
        Runtime::recover(scratch.path(), config).err(),
        Some(DurabilityError::ManifestMissing)
    );
    // open_durable on the same path starts fresh…
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let mut rt = Runtime::open_durable(scratch.path(), config).expect("fresh init");
    register_all(&mut rt, &specs, &WindowPolicy::Count(10));
    rt.push_batch(&mixed_stream(&schema, 30));
    drop(rt);
    // …after which recover() accepts it even without a checkpoint.
    let rt2 = Runtime::recover(scratch.path(), config).expect("wal-only recovery");
    assert_eq!(rt2.next_position(), 30);
    assert_eq!(rt2.num_queries(), specs.len());
}

/// On-disk damage surfaces as stable typed errors, never a panic: a
/// corrupted segment header is `WalCorrupt`; a hole in the record
/// sequence (a lost middle segment) is `RecoverMismatch`.
#[test]
fn recovery_rejects_corruption_with_stable_errors() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 200);
    let build = |tag: &str| {
        let scratch = Scratch::new(tag);
        let config = durable_config(1, FsyncPolicy::EveryN(8));
        let mut rt = Runtime::open_durable(scratch.path(), config).expect("open");
        register_all(&mut rt, &specs, &WindowPolicy::Count(20));
        for batch in stream.chunks(13) {
            rt.push_batch(batch);
        }
        drop(rt);
        let files = wal_files(scratch.path());
        assert!(files.len() >= 3, "small segments must have rolled");
        (scratch, config, files)
    };

    // Bad magic in a sealed segment.
    let (scratch, config, files) = build("magic");
    let mut bytes = std::fs::read(&files[0]).unwrap();
    bytes[0] ^= 0xff;
    std::fs::write(&files[0], &bytes).unwrap();
    assert_eq!(
        Runtime::recover(scratch.path(), config).err(),
        Some(DurabilityError::WalCorrupt("bad wal segment magic"))
    );

    // A flipped payload byte mid-chain truncates that segment like a
    // torn tail — and the next segment no longer continues the
    // sequence: a detected hole, not silent data loss.
    let (scratch, config, files) = build("hole");
    let mid = &files[files.len() / 2];
    let len = std::fs::metadata(mid).unwrap().len();
    let mut bytes = std::fs::read(mid).unwrap();
    bytes[(len / 2) as usize] ^= 0xff;
    std::fs::write(mid, &bytes).unwrap();
    match Runtime::recover(scratch.path(), config).err() {
        Some(DurabilityError::RecoverMismatch(_)) => {}
        other => panic!("expected RecoverMismatch, got {other:?}"),
    }

    // A whole missing middle segment: same verdict.
    let (scratch, config, files) = build("gap");
    std::fs::remove_file(&files[1]).unwrap();
    match Runtime::recover(scratch.path(), config).err() {
        Some(DurabilityError::RecoverMismatch(_)) => {}
        other => panic!("expected RecoverMismatch, got {other:?}"),
    }
}

/// Closure predicates have no wire form, so a durable runtime must
/// refuse them *up front* — before a WAL sequence number is burned —
/// and the log must stay dense and replayable afterwards.
#[test]
fn durable_runtime_rejects_unserializable_queries_without_gaps() {
    let mut schema = Schema::new();
    let a = schema.add_relation("A", 1).unwrap();
    let mut builder = PceaBuilder::new(1);
    let q0 = builder.add_state();
    builder.add_initial_transition(
        UnaryPredicate::Relation(a).and(UnaryPredicate::Custom(std::sync::Arc::new(
            |t: &Tuple| t.values()[0] != Value::Int(13),
        ))),
        LabelSet::singleton(Label(0)),
        q0,
    );
    builder.mark_final(q0);
    let closure_pcea = builder.build();

    let scratch = Scratch::new("unser");
    let config = durable_config(1, FsyncPolicy::Always);
    let mut rt = Runtime::open_durable(scratch.path(), config).expect("open");
    assert!(matches!(
        rt.register(QuerySpec::new(
            "closure",
            closure_pcea.clone(),
            WindowPolicy::Count(5)
        )),
        Err(RuntimeError::UnserializableQuery { .. })
    ));
    // The stable code is exposed for the serving layer.
    assert_eq!(
        pcea::engine::Error::Runtime(RuntimeError::UnserializableQuery {
            query: "closure".into()
        })
        .code(),
        ErrorCode::UnserializableQuery
    );
    // A wire-clean registration right after still works and replays.
    let specs = spec_set(&mut schema);
    register_all(&mut rt, &specs, &WindowPolicy::Count(10));
    rt.push_batch(&mixed_stream(&schema, 40));
    drop(rt);
    let rt2 = Runtime::recover(scratch.path(), config).expect("dense log replays");
    assert_eq!(rt2.num_queries(), specs.len());
    assert_eq!(rt2.next_position(), 40);
}

/// An in-memory runtime answers durability calls with `NotDurable`,
/// and `durability_status` reports the WAL/checkpoint counters.
#[test]
fn durability_status_and_not_durable() {
    let mut rt = Runtime::new(1);
    assert_eq!(rt.checkpoint().err(), Some(DurabilityError::NotDurable));
    assert!(rt.durability_status().is_none());

    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let scratch = Scratch::new("status");
    let config = durable_config(2, FsyncPolicy::EveryN(4));
    let mut rt = Runtime::open_durable(scratch.path(), config).expect("open");
    register_all(&mut rt, &specs, &WindowPolicy::Count(10));
    rt.push_batch(&mixed_stream(&schema, 50));
    let st = rt.durability_status().expect("durable");
    assert!(st.healthy);
    assert!(st.wal_records >= specs.len() as u64, "registers + batches");
    assert!(st.wal_bytes > 0);
    assert_eq!(st.last_checkpoint_epoch, None);
    rt.checkpoint().expect("checkpoint");
    let st = rt.durability_status().expect("durable");
    assert_eq!(st.last_checkpoint_position, Some(50));
    assert_eq!(st.chain_len, 1);
}

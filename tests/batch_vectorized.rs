//! Differential tests for batch evaluation: `push_slice` must be
//! multiset-identical (in fact sequence-identical after sorting by
//! `(position, valuation)`) to tuple-at-a-time `push` —
//!
//! * for the streaming engine *and* every baseline (the three baselines
//!   exercise the `Evaluator` trait's per-tuple fallback, the engine its
//!   vectorized override);
//! * for every slicing of the stream, including empty slices and
//!   slices of one;
//! * under count *and* time windows;
//! * and through the sharded `Runtime`, whose workers now evaluate
//!   coalesced slices, across shard counts and `max_batch` settings.
//!
//! This is the acceptance harness for the exactness argument in
//! `cer_core::evaluator`'s module docs: batch size is an implementation
//! detail, never a semantic knob.

use pcea::automata::ccea::paper_c0;
use pcea::baselines::{CceaStreamEvaluator, NaiveRunsEvaluator, RecomputeEvaluator};
use pcea::prelude::*;
use proptest::prelude::*;

/// Hierarchical queries covering joins, self-joins, constants and
/// disconnection — small enough for the baselines to keep up.
const CATALOG: &[&str] = &[
    "Q(x, y) <- T(x), S(x, y), R(x, y)",
    "Q(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)",
    "Q(x) <- S(x, x), T(x)",
    "Q(x, y) <- T(x), U(y)",
];

/// Slicing patterns, cycled over the stream: the degenerate cases the
/// issue calls out (0 and 1) plus ragged and one-shot slicings.
const SLICINGS: &[&[usize]] = &[
    &[1],
    &[0, 1],
    &[3, 0, 5, 1],
    &[2, 7],
    &[usize::MAX], // the whole stream as one slice
];

/// Random stream over the schema with dense value domains.
fn stream_strategy(schema: &Schema, max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    let rels: Vec<(pcea::common::RelationId, usize)> =
        schema.relations().map(|r| (r, schema.arity(r))).collect();
    let tuple =
        (0..rels.len(), proptest::collection::vec(0i64..4, 0..8)).prop_map(move |(ri, vals)| {
            let (rel, arity) = rels[ri];
            let values: Vec<Value> = (0..arity)
                .map(|k| Value::Int(*vals.get(k).unwrap_or(&1)))
                .collect();
            Tuple::new(rel, values)
        });
    proptest::collection::vec(tuple, 0..max_len)
}

/// Sorted `(position, valuation)` multiset via tuple-at-a-time `push`.
fn per_tuple_outputs(eval: &mut dyn Evaluator, stream: &[Tuple]) -> Vec<(u64, Valuation)> {
    let mut out = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        eval.push_for_each(t, &mut |v| out.push((n as u64, v.clone())));
    }
    out.sort();
    out
}

/// Sorted `(position, valuation)` multiset via `push_slice`, slicing
/// the stream by cycling `sizes` (zeros push genuinely empty slices).
fn sliced_outputs(
    eval: &mut dyn Evaluator,
    stream: &[Tuple],
    sizes: &[usize],
) -> Vec<(u64, Valuation)> {
    let mut out = Vec::new();
    let mut base = 0usize;
    let mut cursor = 0usize;
    loop {
        let sz = sizes[cursor % sizes.len()];
        cursor += 1;
        let end = base.saturating_add(sz).min(stream.len());
        eval.push_slice(&stream[base..end], &mut |j, v| {
            out.push(((base + j) as u64, v.clone()))
        });
        base = end;
        if base >= stream.len() {
            break;
        }
    }
    out.sort();
    out
}

/// Every evaluator implementing the trait for the query, under `window`.
fn evaluator_suite(
    query: &ConjunctiveQuery,
    pcea: &Pcea,
    window: &WindowPolicy,
) -> Vec<(&'static str, Box<dyn Evaluator>)> {
    vec![
        (
            "engine",
            Box::new(StreamingEvaluator::with_window(
                pcea.clone(),
                window.clone(),
            )) as Box<dyn Evaluator>,
        ),
        (
            "naive_runs",
            Box::new(NaiveRunsEvaluator::with_window(
                pcea.clone(),
                window.clone(),
            )),
        ),
        (
            "recompute",
            Box::new(RecomputeEvaluator::with_window(
                query.clone(),
                window.clone(),
            )),
        ),
    ]
}

fn check_query_on_stream(text: &str, stream: &[Tuple], schema: &Schema, query: &ConjunctiveQuery) {
    let pcea = compile_hcq(schema, query).unwrap().pcea;
    let windows = [
        WindowPolicy::Count(0),
        WindowPolicy::Count(3),
        WindowPolicy::Count(16),
        WindowPolicy::Count(1_000),
        // All catalog relations carry an integer at position 0; the
        // shared WindowClock clamps non-monotone timestamps, so both
        // paths see identical bounds.
        WindowPolicy::Time {
            duration: 5,
            ts_pos: 0,
        },
        WindowPolicy::Time {
            duration: 1_000,
            ts_pos: 0,
        },
    ];
    for window in &windows {
        let mut reference = StreamingEvaluator::with_window(pcea.clone(), window.clone());
        let want = per_tuple_outputs(&mut reference, stream);
        for sizes in SLICINGS {
            for (name, mut eval) in evaluator_suite(query, &pcea, window) {
                let got = sliced_outputs(eval.as_mut(), stream, sizes);
                assert_eq!(
                    got, want,
                    "{text}: {name} sliced {sizes:?} vs per-tuple engine, window {window:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn push_slice_matches_push_across_evaluators(
        qi in 0..CATALOG.len(),
        seed in any::<u64>(),
    ) {
        let text = CATALOG[qi];
        let mut schema = Schema::new();
        let query = parse_query(&mut schema, text).unwrap();
        let mut runner = proptest::test_runner::TestRunner::new_with_rng(
            ProptestConfig::default(),
            proptest::test_runner::TestRng::from_seed(
                proptest::test_runner::RngAlgorithm::ChaCha,
                &{
                    let mut b = [0u8; 32];
                    b[..8].copy_from_slice(&seed.to_le_bytes());
                    b
                },
            ),
        );
        use proptest::strategy::ValueTree;
        let stream = stream_strategy(&schema, 40)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        check_query_on_stream(text, &stream, &schema, &query);
    }
}

/// The chain-specialized CCEA baseline (per-tuple trait fallback)
/// against the engine's batch path on the same automaton.
#[test]
fn ccea_baseline_agrees_with_batched_engine() {
    let (_, r, s, t) = Schema::sigma0();
    let mut gen = cer_stream(r, s, t);
    let stream: Vec<Tuple> = (0..250).map(|_| gen.next_tuple().unwrap()).collect();
    let ccea = paper_c0(r, s, t);
    let pcea = ccea.to_pcea();
    for w in [0u64, 2, 8, 64] {
        let mut base = CceaStreamEvaluator::new(ccea.clone(), w);
        let want = per_tuple_outputs(&mut base, &stream);
        for sizes in SLICINGS {
            let mut engine = StreamingEvaluator::new(pcea.clone(), w);
            let got = sliced_outputs(&mut engine, &stream, sizes);
            assert_eq!(got, want, "w={w}, sizes={sizes:?}");
            // And the baseline's own trait fallback is slicing-invariant.
            let mut base2 = CceaStreamEvaluator::new(ccea.clone(), w);
            let got2 = sliced_outputs(&mut base2, &stream, sizes);
            assert_eq!(got2, want, "baseline w={w}, sizes={sizes:?}");
        }
    }
}

fn cer_stream(
    r: pcea::common::RelationId,
    s: pcea::common::RelationId,
    t: pcea::common::RelationId,
) -> Sigma0Gen {
    Sigma0Gen::new(r, s, t, 99).with_domains(3, 3)
}

/// The sharded runtime now evaluates coalesced slices: outputs must be
/// independent of shard count, producer chunking and `max_batch`.
#[test]
fn runtime_batching_matches_independent_evaluators() {
    let mut schema = Schema::new();
    let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(&schema, &q0).unwrap().pcea;
    let star = parse_query(&mut schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(&schema, &star).unwrap().pcea;
    let rels: Vec<_> = schema.relations().collect();
    let stream: Vec<Tuple> = (0..300)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let values = (0..schema.arity(rel))
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect();
    let specs = [
        ("q0_pinned", &q0_pcea, Partition::ByQuery),
        ("q0_keyed", &q0_pcea, Partition::ByKey { pos: 0 }),
        ("star_pinned", &star_pcea, Partition::ByQuery),
    ];
    let mut wants = Vec::new();
    for (_, pcea, _) in &specs {
        let mut eval = StreamingEvaluator::new((*pcea).clone(), 16);
        wants.push(per_tuple_outputs(&mut eval, &stream));
    }
    for shards in [1usize, 2, 4] {
        for max_batch in [1usize, 3, 4096] {
            for chunk in [1usize, 17, 300] {
                let mut rt = Runtime::new(RuntimeConfig::new(shards).with_ingest(IngestConfig {
                    max_batch,
                    ..IngestConfig::default()
                }));
                let ids: Vec<QueryId> = specs
                    .iter()
                    .map(|(name, pcea, partition)| {
                        rt.register(
                            QuerySpec::new(*name, (*pcea).clone(), WindowPolicy::Count(16))
                                .with_partition(*partition),
                        )
                        .unwrap()
                    })
                    .collect();
                let mut events = Vec::new();
                for slice in stream.chunks(chunk) {
                    events.extend(rt.push_batch(slice));
                }
                for (qi, id) in ids.iter().enumerate() {
                    let mut got: Vec<(u64, Valuation)> = events
                        .iter()
                        .filter(|e| e.query == *id)
                        .map(|e| (e.position, e.valuation.clone()))
                        .collect();
                    got.sort();
                    assert_eq!(
                        got, wants[qi],
                        "query {qi}, shards={shards}, max_batch={max_batch}, chunk={chunk}"
                    );
                }
                // The drain-loop batching is observable in the stats.
                let stats = rt.stats();
                let drained: u64 = stats.shard_queues.iter().map(|q| q.drained_tuples).sum();
                assert!(drained > 0, "workers drained through pop_batch");
                if max_batch == 1 {
                    assert!(stats
                        .shard_queues
                        .iter()
                        .all(|q| q.max_drain_batch <= chunk.max(1)));
                }
            }
        }
    }
}

//! Sliding-window semantics and garbage-collection transparency on long
//! streams, across all evaluators.

use pcea::baselines::{NaiveRunsEvaluator, RecomputeEvaluator};
use pcea::common::gen::Sigma0Gen;
use pcea::prelude::*;
use proptest::prelude::*;

fn q0_setup() -> (Schema, ConjunctiveQuery, Pcea) {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    (schema, q, pcea)
}

fn q0_stream(schema: &Schema, n: usize, dom: i64, seed: u64) -> Vec<Tuple> {
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let mut gen = Sigma0Gen::new(r, s, t, seed).with_domains(dom, dom);
    (0..n).map(|_| gen.next_tuple().unwrap()).collect()
}

/// All four evaluators agree, per position, on a 300-tuple stream under
/// several windows. (The reference oracle is too slow here; agreement of
/// independent implementations is the check.)
#[test]
fn four_way_agreement_on_long_streams() {
    let (schema, q, pcea) = q0_setup();
    let stream = q0_stream(&schema, 300, 3, 1234);
    for w in [0u64, 4, 16, 64] {
        let mut engine = StreamingEvaluator::new(pcea.clone(), w);
        let mut naive = NaiveRunsEvaluator::new(pcea.clone(), w);
        let mut rec = RecomputeEvaluator::new(q.clone(), w);
        for (n, tu) in stream.iter().enumerate() {
            let mut a = engine.push_collect(tu);
            let mut b = naive.push_collect(tu);
            let c = rec.push_collect(tu);
            a.sort();
            b.sort();
            assert_eq!(a, b, "engine vs naive at {n}, w={w}");
            assert_eq!(a, c, "engine vs recompute at {n}, w={w}");
        }
    }
}

/// Window monotonicity: enlarging the window never loses outputs, and
/// w = stream length recovers the unwindowed semantics.
#[test]
fn window_monotonicity() {
    let (schema, _, pcea) = q0_setup();
    let stream = q0_stream(&schema, 120, 2, 77);
    let mut prev_total = 0usize;
    for w in [0u64, 1, 2, 4, 8, 16, 32, 64, 128] {
        let mut engine = StreamingEvaluator::new(pcea.clone(), w);
        let total: usize = stream.iter().map(|t| engine.push_count(t)).sum();
        assert!(
            total >= prev_total,
            "outputs must grow with the window: w={w}, {total} < {prev_total}"
        );
        prev_total = total;
    }
}

/// Every output's span fits the window (the defining property of
/// `⟦P⟧^w_i(S)`).
#[test]
fn output_spans_respect_window() {
    let (schema, _, pcea) = q0_setup();
    let stream = q0_stream(&schema, 200, 2, 9);
    for w in [3u64, 9, 27] {
        let mut engine = StreamingEvaluator::new(pcea.clone(), w);
        for tu in &stream {
            let i = engine.next_position();
            engine.push_for_each(tu, |v| {
                let min = v.min_pos().unwrap();
                let max = v.max_pos().unwrap();
                assert_eq!(max, i, "outputs complete at the current position");
                assert!(i - min <= w, "span {} exceeds window {w}", i - min);
            });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// GC frequency never changes results; memory stays bounded.
    #[test]
    fn gc_frequency_is_unobservable(
        gc_every in 1u64..40,
        w in 1u64..32,
        seed in any::<u64>(),
    ) {
        let (schema, _, pcea) = q0_setup();
        let stream = q0_stream(&schema, 250, 2, seed);
        let mut with_gc = StreamingEvaluator::new(pcea.clone(), w);
        with_gc.set_gc_every(gc_every);
        let mut without_gc = StreamingEvaluator::new(pcea.clone(), w);
        without_gc.set_gc_every(u64::MAX);
        for tu in &stream {
            let mut a = with_gc.push_collect(tu);
            let mut b = without_gc.push_collect(tu);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
        prop_assert!(with_gc.stats().collections > 0);
        prop_assert!(with_gc.stats().arena_nodes <= without_gc.stats().arena_nodes);
    }
}

/// Long-haul memory bound: 20k events with a small window keep the
/// arena within a constant multiple of `|∆| · w`.
#[test]
fn long_haul_memory_bound() {
    let (schema, _, pcea) = q0_setup();
    let transitions = pcea.transitions().len();
    let stream = q0_stream(&schema, 20_000, 4, 5);
    let w = 64u64;
    let mut engine = StreamingEvaluator::new(pcea, w);
    engine.set_gc_every(w);
    let mut peak = 0usize;
    for tu in &stream {
        engine.push(tu);
        peak = peak.max(engine.stats().arena_nodes);
    }
    let budget = 16 * transitions * (w as usize + 1);
    assert!(peak <= budget, "arena peaked at {peak} > budget {budget}");
}

//! Long-haul stress and edge-case tests: scale beyond what the oracles
//! can check, verified via invariants and cross-engine agreement.

use pcea::baselines::NaiveRunsEvaluator;
use pcea::common::gen::StarGen;
use pcea::prelude::*;

/// A 10-satellite star query over 100k events: the engine must sustain
/// throughput and bounded memory with no invariant violations.
#[test]
fn wide_star_long_stream() {
    let mut schema = Schema::new();
    let k = 10usize;
    let mut gen = StarGen::build(&mut schema, k, 99)
        .unwrap()
        .with_domains(32, 8);
    let body: Vec<String> = std::iter::once("A0(x)".to_string())
        .chain((1..=k).map(|i| format!("A{i}(x, y{i})")))
        .collect();
    let head: Vec<String> = std::iter::once("x".to_string())
        .chain((1..=k).map(|i| format!("y{i}")))
        .collect();
    let text = format!("Q({}) <- {}", head.join(", "), body.join(", "));
    let q = parse_query(&mut schema, &text).unwrap();
    let compiled = compile_hcq(&schema, &q).unwrap();
    let w = 64u64;
    let mut engine = StreamingEvaluator::new(compiled.pcea, w);
    engine.set_gc_every(w);
    let mut outputs = 0usize;
    let mut peak = 0usize;
    for _ in 0..100_000 {
        let t = gen.next_tuple().unwrap();
        outputs += engine.push_count(&t);
        peak = peak.max(engine.stats().arena_nodes);
    }
    // Wide stars with narrow windows rarely complete — the point is that
    // the engine survives; matches may be zero.
    assert!(peak < 500_000, "arena peaked at {peak}");
    let st = engine.stats();
    assert_eq!(st.positions, 100_000);
    let _ = outputs;
}

/// Every output of a long dense run satisfies: completion at the current
/// position, span within the window, exactly one position per atom
/// label (simplicity of compiled HCQs).
#[test]
fn output_wellformedness_under_density() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let compiled = compile_hcq(&schema, &q).unwrap();
    let r = schema.relation("R").unwrap();
    let s = schema.relation("S").unwrap();
    let t = schema.relation("T").unwrap();
    let mut gen = pcea::common::gen::Sigma0Gen::new(r, s, t, 4).with_domains(2, 2);
    let w = 24u64;
    let mut engine = StreamingEvaluator::new(compiled.pcea, w);
    let mut checked = 0usize;
    for _ in 0..3_000 {
        let tu = gen.next_tuple().unwrap();
        let i = engine.next_position();
        engine.push_for_each(&tu, |v| {
            checked += 1;
            assert_eq!(v.max_pos(), Some(i));
            assert!(i - v.min_pos().unwrap() <= w);
            for l in 0..3u32 {
                assert_eq!(v.get(Label(l)).len(), 1, "one position per atom");
            }
        });
    }
    assert!(checked > 10_000, "dense run must produce many outputs");
}

/// Engine vs naive runs on a *pattern-language* automaton (not just
/// compiled CQs): independent implementations agree on a 200-tuple
/// stream under several windows.
#[test]
fn pattern_engine_vs_naive() {
    let mut schema = Schema::new();
    let c = pattern_to_pcea(&mut schema, "A(x) ; B(x, _)+").unwrap();
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream: Vec<Tuple> = (0..200)
        .map(|i| {
            if i % 3 == 0 {
                Tuple::new(a, vec![Value::Int(i % 2)])
            } else {
                Tuple::new(b, vec![Value::Int(i % 2), Value::Int(i)])
            }
        })
        .collect();
    for w in [2u64, 6, 20] {
        let mut engine = StreamingEvaluator::new(c.pcea.clone(), w);
        let mut naive = NaiveRunsEvaluator::new(c.pcea.clone(), w);
        for tu in &stream {
            let mut x = engine.push_collect(tu);
            let mut y = naive.push_collect(tu);
            x.sort();
            y.sort();
            assert_eq!(x, y, "w={w}");
        }
    }
}

/// Empty streams, empty schemas, single-tuple streams: nothing panics.
#[test]
fn degenerate_inputs() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(x) <- T(x)").unwrap();
    let compiled = compile_hcq(&schema, &q).unwrap();
    let t = schema.relation("T").unwrap();
    // Window 0: a single-atom query still matches (span 0).
    let mut engine = StreamingEvaluator::new(compiled.pcea.clone(), 0);
    assert_eq!(engine.push_count(&Tuple::new(t, vec![Value::Int(1)])), 1);
    // An engine that never sees a tuple.
    let idle = StreamingEvaluator::new(compiled.pcea, 10);
    assert_eq!(idle.stats().positions, 0);
    let mut n = 0;
    idle.for_each_output(|_| n += 1);
    assert_eq!(n, 0);
}

/// Tuples of relations the automaton never mentions are skipped at full
/// speed and never corrupt state.
#[test]
fn foreign_relations_ignored() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(x) <- T(x), U(x)").unwrap();
    let compiled = compile_hcq(&schema, &q).unwrap();
    let t = schema.relation("T").unwrap();
    let u = schema.relation("U").unwrap();
    let noise = schema.add_relation("NOISE", 3).unwrap();
    let mut engine = StreamingEvaluator::new(compiled.pcea, 100);
    let mut total = 0usize;
    for i in 0..50i64 {
        total += engine.push_count(&Tuple::new(
            noise,
            vec![Value::Int(i), Value::Int(i), Value::Int(i)],
        ));
    }
    total += engine.push_count(&Tuple::new(t, vec![Value::Int(1)]));
    total += engine.push_count(&Tuple::new(u, vec![Value::Int(1)]));
    assert_eq!(total, 1);
}

/// 64-atom query: the label-set capacity boundary compiles and runs;
/// 65 atoms are rejected.
#[test]
fn label_capacity_boundary() {
    // 64 disconnected unary atoms (a degenerate but legal HCQ).
    let make = |n: usize| {
        let body: Vec<String> = (0..n).map(|i| format!("R{i}(x{i})")).collect();
        let head: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
        format!("Q({}) <- {}", head.join(", "), body.join(", "))
    };
    let mut schema = Schema::new();
    let q64 = parse_query(&mut schema, &make(64)).unwrap();
    let compiled = compile_hcq(&schema, &q64).expect("64 atoms fit");
    assert_eq!(compiled.pcea.num_labels(), 64);

    let mut schema2 = Schema::new();
    let q65 = parse_query(&mut schema2, &make(65)).unwrap();
    assert!(matches!(
        compile_hcq(&schema2, &q65),
        Err(pcea::cq::CompileError::TooManyAtoms { got: 65, .. })
    ));
}

//! Observability-layer tests: the pipeline's latency histograms, the
//! structured event journal, the metrics export surface, and the
//! monotone-since-start contract of [`QueueStats`].
//!
//! The differential property at the bottom re-runs the runtime-vs-
//! independent-evaluator comparison *with the instrumentation active*
//! (e2e sampling on, stats and text export exercised mid-flight), so
//! any observer effect on outputs would fail the same assertions the
//! uninstrumented suite makes.

use pcea::common::wire::{Wire, WireReader, WireWriter};
use pcea::engine::EngineStats;
use pcea::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Deterministic dense stream over all relations of `schema`.
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

/// σ0 schema (T/1, S/2, R/2).
fn sigma0_schema() -> (
    Schema,
    pcea::common::RelationId,
    pcea::common::RelationId,
    pcea::common::RelationId,
) {
    let mut schema = Schema::new();
    let t = schema.add_relation("T", 1).unwrap();
    let s = schema.add_relation("S", 2).unwrap();
    let r = schema.add_relation("R", 2).unwrap();
    (schema, r, s, t)
}

/// σ0-shaped variant with the S-branch tightened to `y ≥ threshold`.
fn sigma0_variant(
    r: pcea::common::RelationId,
    s: pcea::common::RelationId,
    t: pcea::common::RelationId,
    threshold: i64,
) -> Pcea {
    let dot = LabelSet::singleton(Label(0));
    let mut b = PceaBuilder::new(1);
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_initial_transition(UnaryPredicate::Relation(t), dot, q0);
    b.add_initial_transition(
        UnaryPredicate::Relation(s).and(UnaryPredicate::Cmp {
            pos: 1,
            op: CmpOp::Ge,
            value: Value::Int(threshold),
        }),
        dot,
        q1,
    );
    b.add_transition(
        vec![
            (q0, EqPredicate::on_positions(t, [0usize], r, [0usize])),
            (
                q1,
                EqPredicate::on_positions(s, [0usize, 1], r, [0usize, 1]),
            ),
        ],
        UnaryPredicate::Relation(r),
        dot,
        q2,
    );
    b.mark_final(q2);
    b.build()
}

/// Interleaved T/S/R triples with matching join values: under a count
/// window ≥ 3, every triple whose `y` passes the S-branch threshold
/// completes at least one σ0 match. Keys (`x`) spread over 16 values so
/// key-partitioned queries keep every shard busy.
fn triple_stream(
    r: pcea::common::RelationId,
    s: pcea::common::RelationId,
    t: pcea::common::RelationId,
    n_triples: usize,
) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(n_triples * 3);
    for j in 0..n_triples {
        let x = Value::Int((j % 16) as i64);
        let y = Value::Int((j % 5) as i64);
        out.push(Tuple::new(t, vec![x.clone()]));
        out.push(Tuple::new(s, vec![x.clone(), y.clone()]));
        out.push(Tuple::new(r, vec![x, y]));
    }
    out
}

/// A single-relation match-everything automaton: every `rel` tuple is a
/// match (maximum delivery pressure per ingested tuple).
fn match_all(rel: pcea::common::RelationId) -> Pcea {
    let dot = LabelSet::singleton(Label(0));
    let mut b = PceaBuilder::new(1);
    let q0 = b.add_state();
    b.add_initial_transition(UnaryPredicate::Relation(rel), dot, q0);
    b.mark_final(q0);
    b.build()
}

/// Sorted `(position, valuation)` multiset of one per-query evaluator.
fn single_engine_outputs(
    pcea: &Pcea,
    window: WindowPolicy,
    stream: &[Tuple],
) -> Vec<(u64, Valuation)> {
    let mut engine = StreamingEvaluator::with_window(pcea.clone(), window);
    let mut out = Vec::new();
    for (n, t) in stream.iter().enumerate() {
        for v in engine.push_collect(t) {
            out.push((n as u64, v));
        }
    }
    out.sort();
    out
}

/// Sorted `(position, valuation)` multiset of one query's runtime events.
fn runtime_outputs(events: &[MatchEvent], q: QueryId) -> Vec<(u64, Valuation)> {
    let mut out: Vec<(u64, Valuation)> = events
        .iter()
        .filter(|e| e.query == q)
        .map(|e| (e.position, e.valuation.clone()))
        .collect();
    out.sort();
    out
}

/// Extract a histogram metric from a snapshot or panic with the name.
fn hist(snap: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
    match &snap
        .get(name, labels)
        .unwrap_or_else(|| panic!("metric {name} {labels:?} missing"))
        .value
    {
        MetricValue::Histogram(h) => h.clone(),
        other => panic!("metric {name}: expected histogram, got {other:?}"),
    }
}

/// Extract a counter or gauge value from a snapshot.
fn scalar(snap: &MetricsSnapshot, name: &str, labels: &[(&str, &str)]) -> u64 {
    match &snap
        .get(name, labels)
        .unwrap_or_else(|| panic!("metric {name} {labels:?} missing"))
        .value
    {
        MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
        other => panic!("metric {name}: expected scalar, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Histograms + export surface
// ---------------------------------------------------------------------

/// A synchronous multi-shard workload populates the stage histograms,
/// and the export surface holds together: non-zero percentiles, a text
/// exposition the checker accepts, and a lossless wire round-trip.
#[test]
fn stage_histograms_populate_and_export_is_valid() {
    let (_schema, r, s, t) = sigma0_schema();
    let stream = triple_stream(r, s, t, 200);
    let mut rt = Runtime::new(4);
    for (i, th) in [0i64, 1, 2].iter().enumerate() {
        rt.register(
            QuerySpec::new(
                format!("v{i}"),
                sigma0_variant(r, s, t, *th),
                WindowPolicy::Count(32),
            )
            .with_partition(Partition::ByKey { pos: 0 }),
        )
        .unwrap();
    }
    let events = rt.push_batch(&stream);
    assert!(!events.is_empty(), "the workload must produce matches");

    let snap = rt.metrics_snapshot();
    let queues = rt.stats().shard_queues;
    // The sequencer stamped every push_batch block.
    let reserve = hist(&snap, "cer_seq_reserve_nanos", &[]);
    assert!(reserve.count() > 0);
    assert!(reserve.p50() > 0, "nanosecond spans can't be zero");
    assert!(reserve.p99() >= reserve.p50());
    assert!(reserve.max() >= reserve.p99());
    // Every shard that received tuples evaluated batches, split into
    // prefilter and tail spans (16 keys over 4 shards: all of them, in
    // practice, but only drained shards are required to have timings).
    let mut eval_total = 0;
    let mut active = 0;
    for (i, queue) in queues.iter().enumerate() {
        if queue.drained_tuples == 0 {
            continue;
        }
        active += 1;
        let shard = i.to_string();
        let labels = [("shard", shard.as_str())];
        let eval = hist(&snap, "cer_shard_eval_nanos", &labels);
        assert!(
            eval.count() > 0,
            "shard {i} drained tuples but timed no eval"
        );
        assert!(eval.p50() > 0);
        eval_total += eval.count();
        assert!(hist(&snap, "cer_shared_prefilter_nanos", &labels).count() > 0);
        assert!(hist(&snap, "cer_eval_tail_nanos", &labels).count() > 0);
        assert!(hist(&snap, "cer_queue_wait_nanos", &labels).count() > 0);
    }
    assert!(active >= 1, "no shard saw any tuple");
    // Matches were delivered, so delivery + (default every-match) e2e
    // histograms saw samples.
    assert!(hist(&snap, "cer_delivery_nanos", &[]).count() > 0);
    let e2e = hist(&snap, "cer_e2e_nanos", &[]);
    assert_eq!(e2e.count(), events.len() as u64);
    assert!(e2e.p99() >= e2e.p50() && e2e.p50() > 0);

    // Merging per-shard eval histograms preserves the total count.
    let mut merged = HistogramSnapshot::default();
    for i in 0..4 {
        let shard = i.to_string();
        merged.merge(&hist(
            &snap,
            "cer_shard_eval_nanos",
            &[("shard", shard.as_str())],
        ));
    }
    assert_eq!(merged.count(), eval_total);

    // The text exposition passes the format checker and mentions every
    // family we export.
    let text = rt.metrics_text();
    validate_prometheus_text(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    for family in [
        "cer_seq_reserve_nanos",
        "cer_shard_eval_nanos",
        "cer_e2e_nanos",
        "cer_queue_depth",
        "cer_query_positions_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "{family} not exported"
        );
    }

    // The snapshot round-trips through the checkpoint wire format.
    let mut w = WireWriter::new();
    snap.encode(&mut w).unwrap();
    let bytes = w.into_bytes();
    let mut rdr = WireReader::new(&bytes);
    let back = MetricsSnapshot::decode(&mut rdr).unwrap();
    assert!(rdr.is_exhausted());
    assert_eq!(back, snap);
}

/// The e2e span is sampled every Nth delivered match; the knob thins
/// exactly, and the other histograms are unaffected.
#[test]
fn e2e_sampling_knob_thins_recording() {
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 1).unwrap();
    let mut rt = Runtime::new(RuntimeConfig::new(1).with_e2e_sample_every(4));
    rt.register(QuerySpec::new("all", match_all(e), WindowPolicy::Count(4)))
        .unwrap();
    let stream: Vec<Tuple> = (0..100)
        .map(|i| Tuple::new(e, vec![Value::Int(i as i64)]))
        .collect();
    let events = rt.push_batch(&stream);
    assert_eq!(events.len(), 100);
    let snap = rt.metrics_snapshot();
    // Ticks 0, 4, 8, … of the 100 delivered matches were sampled.
    assert_eq!(hist(&snap, "cer_e2e_nanos", &[]).count(), 25);
    // Delivery timing is not thinned by the e2e knob.
    assert_eq!(hist(&snap, "cer_delivery_nanos", &[]).count(), 100);
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

/// Control-plane events land in the journal in call order, with dense
/// sequence numbers and non-decreasing stream positions; a second drain
/// is empty and nothing was overwritten.
#[test]
fn journal_orders_control_events() {
    let (schema, r, s, t) = sigma0_schema();
    let stream = mixed_stream(&schema, 100);
    let mut rt = Runtime::new(2);
    let q1 = rt
        .register(QuerySpec::new(
            "one",
            sigma0_variant(r, s, t, 0),
            WindowPolicy::Count(16),
        ))
        .unwrap();
    let q2 = rt
        .register(QuerySpec::new(
            "two",
            sigma0_variant(r, s, t, 1),
            WindowPolicy::Count(16),
        ))
        .unwrap();
    rt.push_batch(&stream);
    let _snap = rt.snapshot().unwrap();
    rt.replace(
        q2,
        QuerySpec::new(
            "two_v2",
            sigma0_variant(r, s, t, 2),
            WindowPolicy::Count(16),
        ),
    )
    .unwrap();
    rt.deregister(q1).unwrap();

    let entries = rt.events();
    // Dense journal sequence numbers from 0.
    for (i, e) in entries.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "journal seqs must be dense");
    }
    // Stream positions never regress along the journal (count windows,
    // ample queue capacity: only single-threaded control events here).
    for w in entries.windows(2) {
        assert!(
            w[0].item.position() <= w[1].item.position(),
            "positions regressed: {:?} then {:?}",
            w[0].item,
            w[1].item
        );
    }
    let kinds: Vec<&PipelineEvent> = entries.iter().map(|e| &e.item).collect();
    assert!(
        matches!(kinds[0], PipelineEvent::QueryRegistered { query, position: 0 } if *query == q1)
    );
    assert!(
        matches!(kinds[1], PipelineEvent::QueryRegistered { query, position: 0 } if *query == q2)
    );
    assert!(matches!(
        kinds[2],
        PipelineEvent::SnapshotTaken { position: 100 }
    ));
    assert!(
        matches!(kinds[3], PipelineEvent::QueryReplaced { query, position: 100 } if *query == q2)
    );
    assert!(
        matches!(kinds[4], PipelineEvent::QueryDeregistered { query, position: 100 } if *query == q1)
    );
    assert_eq!(entries.len(), 5);
    assert_eq!(rt.events_overwritten(), 0);
    // Drain is destructive: the journal is now empty.
    assert!(rt.events().is_empty());
    // A restored runtime journals the restore itself.
    drop(rt);
    let rt2 = Runtime::restore(&_snap, 3).unwrap();
    let restored = rt2.events();
    assert!(restored.iter().any(|e| matches!(
        e.item,
        PipelineEvent::Restored {
            position: 100,
            shards: 3
        }
    )));
    let snap2 = rt2.metrics_snapshot();
    assert!(hist(&snap2, "cer_restore_nanos", &[]).count() > 0);
}

/// Overflowing the bounded journal overwrites the oldest entries and
/// counts every overwrite; the survivors' dense seqs expose the gap.
#[test]
fn journal_counts_ring_overwrites() {
    let (_schema, r, s, t) = sigma0_schema();
    let mut rt = Runtime::new(1);
    // 520 register+deregister cycles = 1040 events > the 1024-slot ring.
    for i in 0..520 {
        let id = rt
            .register(QuerySpec::new(
                format!("churn{i}"),
                sigma0_variant(r, s, t, i as i64 % 3),
                WindowPolicy::Count(8),
            ))
            .unwrap();
        rt.deregister(id).unwrap();
    }
    assert_eq!(rt.events_overwritten(), 16);
    let entries = rt.events();
    assert_eq!(entries.len(), 1024);
    // The oldest 16 events are gone; the survivors start at seq 16 and
    // stay dense to the last push.
    assert_eq!(entries.first().unwrap().seq, 16);
    assert_eq!(entries.last().unwrap().seq, 1039);
    for w in entries.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
    let snap = rt.metrics_snapshot();
    assert_eq!(scalar(&snap, "cer_events_pushed_total", &[]), 1040);
    assert_eq!(scalar(&snap, "cer_events_overwritten_total", &[]), 16);
}

/// DropNewest sheds are journaled with their shard and position, and
/// surface in the drop counters.
#[test]
fn drops_are_journaled_and_counted() {
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 1).unwrap();
    let mut rt = Runtime::new(RuntimeConfig::new(1).with_ingest(IngestConfig {
        queue_capacity: 8,
        policy: BackpressurePolicy::DropNewest,
        ..IngestConfig::default()
    }));
    rt.register(QuerySpec::new("all", match_all(e), WindowPolicy::Count(4)))
        .unwrap();
    let h = rt.ingest_handle();
    let big: Vec<Tuple> = (0..200)
        .map(|i| Tuple::new(e, vec![Value::Int(i as i64)]))
        .collect();
    h.push_batch(&big).unwrap();
    rt.drain();
    let dropped = h.total_dropped();
    assert!(dropped > 0, "a 200-tuple burst must overflow capacity 8");
    let journaled: u64 = rt
        .events()
        .iter()
        .filter_map(|e| match e.item {
            PipelineEvent::TuplesDropped {
                shard: 0, count, ..
            } => Some(count),
            _ => None,
        })
        .sum();
    assert_eq!(journaled, dropped, "every shed tuple is journaled");
    let snap = rt.metrics_snapshot();
    assert_eq!(scalar(&snap, "cer_tuples_dropped_total", &[]), dropped);
    assert_eq!(
        scalar(&snap, "cer_queue_dropped_total", &[("shard", "0")]),
        dropped
    );
}

/// Under Block backpressure with a slow consumer, producers park; the
/// parks are journaled with their duration and counted, and the park
/// histogram agrees.
#[test]
fn producer_parks_are_journaled_under_backpressure() {
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 1).unwrap();
    let mut rt = Runtime::new(RuntimeConfig::new(1).with_ingest(IngestConfig {
        queue_capacity: 4,
        policy: BackpressurePolicy::Block,
        ..IngestConfig::default()
    }));
    let q = rt
        .register(QuerySpec::new("all", match_all(e), WindowPolicy::Count(4)))
        .unwrap();
    // A 1-slot blocking subscription: the shard worker parks on the
    // second undrained match, the 4-tuple queue fills behind it, and
    // the producer parks in turn.
    let sub = rt.subscribe_with(SubscriptionFilter::Query(q), 1, BackpressurePolicy::Block);
    let h = rt.ingest_handle();
    let n = 64u64;
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            h.push(&Tuple::new(e, vec![Value::Int(i as i64)])).unwrap();
        }
    });
    // Let the backlog form, then drain slowly enough to keep it formed.
    std::thread::sleep(Duration::from_millis(50));
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut got = 0u64;
    while got < n {
        assert!(
            Instant::now() < deadline,
            "only {got}/{n} matches delivered"
        );
        if sub.recv_timeout(Duration::from_secs(1)).is_some() {
            got += 1;
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    producer.join().unwrap();
    rt.drain();

    let parks = rt
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.item,
                PipelineEvent::ProducerParked { shard: 0, park_nanos, .. } if park_nanos > 0
            )
        })
        .count() as u64;
    assert!(parks > 0, "the producer never parked");
    let snap = rt.metrics_snapshot();
    assert_eq!(scalar(&snap, "cer_producer_parks_total", &[]), parks);
    let park_hist = hist(&snap, "cer_producer_park_nanos", &[]);
    assert_eq!(park_hist.count(), parks);
    assert!(park_hist.p50() > 0);
    // The queue spent real time at capacity.
    assert_eq!(scalar(&snap, "cer_queue_high_water", &[("shard", "0")]), 4);
}

// ---------------------------------------------------------------------
// Stats contracts
// ---------------------------------------------------------------------

/// The per-shard engine-stats breakdown sums exactly to the per-query
/// totals, shard ids are valid and strictly increasing per query.
#[test]
fn per_query_shard_breakdown_sums_to_totals() {
    let (_schema, r, s, t) = sigma0_schema();
    let stream = triple_stream(r, s, t, 100);
    let shards = 4;
    let mut rt = Runtime::new(shards);
    rt.register(QuerySpec::new(
        "pinned",
        sigma0_variant(r, s, t, 0),
        WindowPolicy::Count(16),
    ))
    .unwrap();
    rt.register(
        QuerySpec::new("keyed", sigma0_variant(r, s, t, 1), WindowPolicy::Count(16))
            .with_partition(Partition::ByKey { pos: 0 }),
    )
    .unwrap();
    rt.push_batch(&stream);
    let stats = rt.stats();
    assert_eq!(stats.per_query.len(), stats.per_query_shards.len());
    for ((id, total), (bid, breakdown)) in stats.per_query.iter().zip(&stats.per_query_shards) {
        assert_eq!(id, bid, "breakdown is sorted like the totals");
        assert!(!breakdown.is_empty());
        let mut acc = EngineStats::default();
        for w in breakdown.windows(2) {
            assert!(w[0].0 < w[1].0, "shard ids strictly increasing");
        }
        for (shard, st) in breakdown {
            assert!(*shard < shards);
            acc.positions += st.positions;
            acc.arena_nodes += st.arena_nodes;
            acc.index_entries += st.index_entries;
            acc.extends += st.extends;
            acc.unions += st.unions;
            acc.collections += st.collections;
            acc.ts_regressions += st.ts_regressions;
        }
        assert_eq!(&acc, total, "shard breakdown must sum to the total");
    }
    // The keyed query is hosted on every shard and each saw tuples.
    let keyed = &stats.per_query_shards[1].1;
    assert_eq!(keyed.len(), shards);
    assert!(keyed.iter().all(|(_, st)| st.positions > 0));
}

/// The cumulative / high-water [`QueueStats`] fields are monotone
/// since start across repeated `stats()` calls — mid-flight and after
/// drains (regression test for the documented contract).
#[test]
fn queue_stats_are_monotone_since_start() {
    let mut schema = Schema::new();
    let e = schema.add_relation("E", 1).unwrap();
    let mut rt = Runtime::new(RuntimeConfig::new(2).with_ingest(IngestConfig {
        queue_capacity: 16,
        policy: BackpressurePolicy::DropNewest,
        ..IngestConfig::default()
    }));
    rt.register(
        QuerySpec::new("all", match_all(e), WindowPolicy::Count(8))
            .with_partition(Partition::ByKey { pos: 0 }),
    )
    .unwrap();
    let h = rt.ingest_handle();
    let mut prev: Option<Vec<QueueStats>> = None;
    for round in 0..12 {
        // Vary burst size so drops, coalescing and reorder pressure all
        // move; sample both mid-flight and after a drain.
        let burst: Vec<Tuple> = (0..(8 + round * 7))
            .map(|i| Tuple::new(e, vec![Value::Int(i as i64)]))
            .collect();
        h.push_batch(&burst).unwrap();
        if round % 3 == 0 {
            rt.drain();
        }
        let cur = rt.stats().shard_queues;
        if let Some(prev) = &prev {
            for (shard, (p, c)) in prev.iter().zip(&cur).enumerate() {
                let ctx = |f: &str| format!("shard {shard} round {round}: {f} decreased");
                assert!(c.dropped >= p.dropped, "{}", ctx("dropped"));
                assert!(
                    c.drained_batches >= p.drained_batches,
                    "{}",
                    ctx("drained_batches")
                );
                assert!(
                    c.drained_tuples >= p.drained_tuples,
                    "{}",
                    ctx("drained_tuples")
                );
                assert!(
                    c.reorder_released >= p.reorder_released,
                    "{}",
                    ctx("reorder_released")
                );
                assert!(c.high_water >= p.high_water, "{}", ctx("high_water"));
                assert!(
                    c.max_drain_batch >= p.max_drain_batch,
                    "{}",
                    ctx("max_drain_batch")
                );
                assert!(
                    c.reorder_high_water >= p.reorder_high_water,
                    "{}",
                    ctx("reorder_high_water")
                );
            }
        }
        prev = Some(cur);
    }
    rt.drain();
    let last = rt.stats().shard_queues;
    let prev = prev.unwrap();
    for (p, c) in prev.iter().zip(&last) {
        assert!(c.drained_tuples >= p.drained_tuples);
        // Fully drained: the gauges may fall back to zero…
        assert_eq!(c.depth, 0);
        assert_eq!(c.reorder_pending, 0);
        // …but the water-marks must not.
        assert!(c.high_water >= p.high_water);
        assert!(c.reorder_high_water >= p.reorder_high_water);
    }
}

// ---------------------------------------------------------------------
// Differential: instrumentation does not perturb outputs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// With the full observability layer active (e2e sampling, stats
    /// polls and text exports mid-stream), a fleet of near-duplicate
    /// queries still produces, query for query, exactly the independent
    /// per-query evaluator's outputs — across shard counts, partition
    /// modes and window sizes.
    #[test]
    fn instrumented_runtime_matches_independent_evaluators(
        shards in 1usize..5,
        w in prop_oneof![Just(0u64), Just(3), Just(9), Just(1000)],
        keyed in any::<bool>(),
        sample_every in prop_oneof![Just(1u64), Just(3), Just(64)],
        thresholds in proptest::collection::vec(0i64..4, 1..7),
    ) {
        let (_schema, r, s, t) = sigma0_schema();
        let stream = triple_stream(r, s, t, 64);
        let mut rt = Runtime::new(RuntimeConfig::new(shards).with_e2e_sample_every(sample_every));
        let mut ids = Vec::new();
        for (i, &th) in thresholds.iter().enumerate() {
            let mut spec = QuerySpec::new(
                format!("v{i}"),
                sigma0_variant(r, s, t, th),
                WindowPolicy::Count(w),
            );
            if keyed {
                spec = spec.with_partition(Partition::ByKey { pos: 0 });
            }
            ids.push(rt.register(spec).unwrap());
        }
        // Interleave pushes with observer reads: the reads must not
        // perturb the outputs.
        let (head, tail) = stream.split_at(100);
        let mut events = rt.push_batch(head);
        let mid = rt.metrics_snapshot();
        prop_assert!(hist(&mid, "cer_seq_reserve_nanos", &[]).count() > 0);
        prop_assert!(validate_prometheus_text(&rt.metrics_text()).is_ok());
        events.extend(rt.push_batch(tail));
        for (&id, &th) in ids.iter().zip(&thresholds) {
            let want = single_engine_outputs(
                &sigma0_variant(r, s, t, th),
                WindowPolicy::Count(w),
                &stream,
            );
            prop_assert_eq!(runtime_outputs(&events, id), want);
        }
        // The instrumentation observed the whole run: every tuple went
        // through an evaluated batch on some shard.
        let end = rt.metrics_snapshot();
        let eval_batches: u64 = (0..shards)
            .map(|i| {
                let shard = i.to_string();
                hist(&end, "cer_shard_eval_nanos", &[("shard", shard.as_str())]).count()
            })
            .sum();
        prop_assert!(eval_batches > 0);
        if !events.is_empty() {
            let expect = (events.len() as u64).div_ceil(sample_every.max(1));
            // Sampling is a global modulo over delivery order, so the
            // count is exact whatever the interleaving.
            prop_assert_eq!(hist(&end, "cer_e2e_nanos", &[]).count(), expect);
        }
        prop_assert!(validate_prometheus_text(&rt.metrics_text()).is_ok());
    }
}

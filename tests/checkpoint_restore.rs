//! Crash-recovery and hot-swap semantics of the checkpoint subsystem
//! (`cer_core::checkpoint`).
//!
//! The core property: `snapshot → restore → replay suffix` produces
//! output multisets identical to an uninterrupted run — across shard
//! counts (including restoring into a *different* shard count),
//! partition modes, count and time windows, serialized-bytes
//! round-trips, and with producers live during `snapshot()` (the
//! epoch block fences a consistent cut without stopping them).
//! `replace` is checked differentially too: handing a query's state to
//! a recompiled identical query must be invisible, predicates must
//! swap exactly at the call's position, and incompatible hand-offs
//! must be rejected with the old query untouched.

use pcea::engine::checkpoint::{Snapshot, SnapshotError};
use pcea::prelude::*;
use proptest::prelude::*;

/// Deterministic dense stream over all relations of `schema`, one value
/// domain per attribute position (same shape as `ingest_async.rs`).
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

fn sorted(mut events: Vec<MatchEvent>) -> Vec<MatchEvent> {
    events.sort();
    events
}

/// Front-end-compiled spec set: HCQ compiler and pattern language, both
/// partition modes — the round-trip surface the snapshot must carry.
fn spec_set(schema: &mut Schema) -> Vec<(String, Pcea, Partition)> {
    let q0 = parse_query(schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(schema, &q0).unwrap().pcea;
    let star = parse_query(schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(schema, "A(x) ; B(x)").unwrap().pcea;
    vec![
        ("q0_pinned".into(), q0_pcea.clone(), Partition::ByQuery),
        ("q0_keyed".into(), q0_pcea, Partition::ByKey { pos: 0 }),
        ("star_pinned".into(), star_pcea, Partition::ByQuery),
        ("pat_keyed".into(), pat, Partition::ByKey { pos: 0 }),
    ]
}

fn register_all(
    rt: &mut Runtime,
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
) -> Vec<QueryId> {
    specs
        .iter()
        .map(|(name, pcea, partition)| {
            rt.register(
                QuerySpec::new(name.clone(), pcea.clone(), window.clone())
                    .with_partition(*partition),
            )
            .unwrap()
        })
        .collect()
}

/// Uninterrupted reference: one runtime sees the whole stream.
fn uninterrupted(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    shards: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards);
    register_all(&mut rt, specs, window);
    sorted(rt.push_batch(stream))
}

/// Interrupted run: prefix → snapshot (optionally through bytes) →
/// restore into `shards_new` → suffix. Returns prefix + suffix events.
fn interrupted(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    cut: usize,
    shards_old: usize,
    shards_new: usize,
    through_bytes: bool,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards_old);
    register_all(&mut rt, specs, window);
    let mut events = rt.push_batch(&stream[..cut]);
    let snap = rt.snapshot().expect("snapshot");
    assert_eq!(snap.position(), cut as u64, "epoch lands at the cut");
    assert_eq!(snap.origin_shards(), shards_old);
    drop(rt); // the "crash"
    let snap = if through_bytes {
        Snapshot::from_bytes(&snap.to_bytes().expect("to_bytes")).expect("from_bytes")
    } else {
        snap
    };
    let mut rt2 = Runtime::restore(&snap, shards_new).expect("restore");
    assert_eq!(rt2.next_position(), cut as u64, "stamping resumes at P");
    events.extend(rt2.push_batch(&stream[cut..]));
    sorted(events)
}

/// Restore into a new shard count, snapshot again *immediately* — no
/// traffic in between, so no run has expired — and restore once more,
/// twice over. Each home's replica is pruned to the key slice it owns
/// at restore time; without that pruning the second merge would see
/// overlapping replicas and double-count every in-window run of the
/// key-partitioned queries.
#[test]
fn chained_restores_without_traffic_stay_exact() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 240);
    let window = WindowPolicy::Count(1000); // nothing expires: worst case
    let cut = 120;
    let want = uninterrupted(&specs, &window, &stream, 2);
    let mut rt = Runtime::new(2);
    register_all(&mut rt, &specs, &window);
    let mut events = rt.push_batch(&stream[..cut]);
    // Bounce through three layouts back to back: 2 -> 4 -> 3 -> 2.
    for shards in [4usize, 3, 2] {
        let snap = rt.snapshot().expect("snapshot");
        drop(rt);
        rt = Runtime::restore(&snap, shards).expect("restore");
        assert_eq!(rt.next_position(), cut as u64);
    }
    events.extend(rt.push_batch(&stream[cut..]));
    assert_eq!(sorted(events), want);
}

#[test]
fn restore_replay_matches_uninterrupted_count_windows() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 240);
    let mut any = false;
    for w in [3u64, 16, 1000] {
        let window = WindowPolicy::Count(w);
        for (shards_old, shards_new) in [(1usize, 1usize), (1, 4), (3, 1), (2, 4), (4, 2)] {
            let want = uninterrupted(&specs, &window, &stream, shards_old);
            for cut in [0usize, 1, 97, 239, 240] {
                let got = interrupted(
                    &specs,
                    &window,
                    &stream,
                    cut,
                    shards_old,
                    shards_new,
                    cut == 97,
                );
                assert_eq!(
                    got, want,
                    "w={w}, cut={cut}, shards {shards_old}->{shards_new}"
                );
                any |= !want.is_empty();
            }
        }
    }
    assert!(any, "the workload must produce matches somewhere");
}

#[test]
fn restore_replay_matches_uninterrupted_time_windows() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    assert!(pcea.supports_key_partition(1));
    let specs = vec![
        ("timed_pinned".to_string(), pcea.clone(), Partition::ByQuery),
        ("timed_keyed".to_string(), pcea, Partition::ByKey { pos: 1 }),
    ];
    // Non-decreasing timestamps at attribute 0 (the time-window
    // contract), join key at attribute 1.
    let stream: Vec<Tuple> = (0..200)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(
                rel,
                vec![Value::Int(i as i64 / 2), Value::Int((i % 3) as i64)],
            )
        })
        .collect();
    for duration in [0i64, 4, 25, 10_000] {
        let window = WindowPolicy::Time {
            duration,
            ts_pos: 0,
        };
        for (shards_old, shards_new) in [(1usize, 3usize), (3, 1), (2, 2), (4, 2)] {
            let want = uninterrupted(&specs, &window, &stream, shards_old);
            for cut in [11usize, 100, 137] {
                let got = interrupted(
                    &specs,
                    &window,
                    &stream,
                    cut,
                    shards_old,
                    shards_new,
                    cut == 100,
                );
                assert_eq!(
                    got, want,
                    "duration={duration}, cut={cut}, shards {shards_old}->{shards_new}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The acceptance property as a proptest: random cut, shard counts
    /// on both sides, window size, partition mix — restored replay is
    /// multiset-identical to never having stopped.
    #[test]
    fn snapshot_restore_replay_differential(
        cut in 0usize..160,
        shards_old in 1usize..5,
        shards_new in 1usize..5,
        w in prop_oneof![Just(2u64), Just(9), Just(64), Just(1000)],
    ) {
        let mut schema = Schema::new();
        let specs = spec_set(&mut schema);
        let stream = mixed_stream(&schema, 160);
        let window = WindowPolicy::Count(w);
        let want = uninterrupted(&specs, &window, &stream, shards_old);
        let got = interrupted(&specs, &window, &stream, cut, shards_old, shards_new, true);
        prop_assert_eq!(got, want);
    }
}

/// The no-stop-the-world acceptance test: producers ingest concurrently
/// *while* `snapshot()` runs; the receipts reveal the stamped order,
/// and the epoch position P splits it consistently — the original run
/// matches the sync oracle on the stamped order, and replaying the
/// suffix `P..` on the restored runtime reproduces exactly the
/// original's events at positions `≥ P`.
#[test]
fn snapshot_with_live_producers_cuts_consistently() {
    use std::sync::Mutex;
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 4_000);
    let window = WindowPolicy::Count(24);
    for (shards_old, shards_new, producers) in [(2usize, 3usize, 3usize), (3, 1, 4), (1, 4, 2)] {
        let mut rt = Runtime::new(RuntimeConfig::new(shards_old).with_ingest(IngestConfig {
            queue_capacity: 256, // small: real backpressure during the snapshot
            ..IngestConfig::default()
        }));
        register_all(&mut rt, &specs, &window);
        let sub = rt.subscribe_with(
            SubscriptionFilter::All,
            usize::MAX,
            BackpressurePolicy::Block,
        );
        let receipts: Mutex<Vec<(u64, Vec<Tuple>)>> = Mutex::new(Vec::new());
        let chunk = stream.len().div_ceil(producers);
        let snap = std::thread::scope(|scope| {
            for slice in stream.chunks(chunk) {
                let handle = rt.ingest_handle();
                let receipts = &receipts;
                scope.spawn(move || {
                    for batch in slice.chunks(23) {
                        let receipt = handle.push_batch(batch).unwrap();
                        assert_eq!(receipt.dropped, 0, "Block never drops");
                        receipts
                            .lock()
                            .unwrap()
                            .push((receipt.positions.start, batch.to_vec()));
                    }
                });
            }
            // Meanwhile, in the middle of the firehose: the snapshot.
            // Producers are actively reserving/staging blocks on other
            // threads right now; nothing stops them.
            rt.snapshot().expect("snapshot under live producers")
        });
        rt.drain();
        let events_orig = sorted(sub.drain());
        let stats = rt.stats();
        assert_eq!(stats.snapshots.snapshots_taken, 1);
        assert_eq!(stats.snapshots.last_snapshot_pos, Some(snap.position()));
        assert_eq!(stats.snapshots.shard_serialize_nanos.len(), shards_old);
        drop(rt);

        // Reconstruct the stamped order from the receipts: gap-free.
        let mut stamped: Vec<(u64, Tuple)> = receipts
            .into_inner()
            .unwrap()
            .into_iter()
            .flat_map(|(start, batch)| {
                batch
                    .into_iter()
                    .enumerate()
                    .map(move |(k, t)| (start + k as u64, t))
            })
            .collect();
        stamped.sort_by_key(|(i, _)| *i);
        assert_eq!(stamped.len(), stream.len());
        assert!(stamped.iter().enumerate().all(|(k, (i, _))| *i == k as u64));
        let ordered: Vec<Tuple> = stamped.into_iter().map(|(_, t)| t).collect();

        // Oracle: the sync path over the stamped order.
        let want = uninterrupted(&specs, &window, &ordered, 1);
        assert_eq!(events_orig, want, "original run ≡ sync replay");

        // The epoch cut: replaying the suffix on the restored runtime
        // reproduces exactly the original's events at positions ≥ P.
        let p = snap.position() as usize;
        assert!(p <= ordered.len());
        let mut rt2 = Runtime::restore(&snap, shards_new).expect("restore");
        let replay = sorted(rt2.push_batch(&ordered[p..]));
        let want_suffix: Vec<MatchEvent> = want
            .iter()
            .filter(|e| e.position >= p as u64)
            .cloned()
            .collect();
        assert_eq!(
            replay, want_suffix,
            "shards {shards_old}->{shards_new}, producers={producers}, P={p}"
        );
    }
}

/// Replace with a recompiled *identical* query must be invisible: the
/// differential hot-swap acceptance check, including a partial match
/// opened before the swap and completed after it (state handoff, not
/// deregister+register).
#[test]
fn replace_with_identical_query_is_invisible() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 200);
    let window = WindowPolicy::Count(50);
    for shards in [1usize, 3] {
        let want = uninterrupted(&specs, &window, &stream, shards);
        let mut rt = Runtime::new(shards);
        let ids = register_all(&mut rt, &specs, &window);
        let mut events = rt.push_batch(&stream[..90]);
        // Recompile each query from source and hand over the state.
        let mut schema2 = Schema::new();
        let fresh = spec_set(&mut schema2);
        for (id, (name, pcea, partition)) in ids.iter().zip(&fresh) {
            rt.replace(
                *id,
                QuerySpec::new(format!("{name}_v2"), pcea.clone(), window.clone())
                    .with_partition(*partition),
            )
            .unwrap();
        }
        events.extend(rt.push_batch(&stream[90..]));
        assert_eq!(sorted(events), want, "shards={shards}");
        assert_eq!(rt.query_name(ids[0]), Some("q0_pinned_v2"));
    }
}

/// A predicate-only recompile swaps exactly at the call's position:
/// tuples stamped before it fire under the old threshold, after it
/// under the new one — and a run opened before the swap completes
/// under the new automaton (the handoff carries partial state).
#[test]
fn replace_swaps_predicates_at_the_call_position() {
    let mut schema = Schema::new();
    let a = schema.add_relation("A", 1).unwrap();
    let b = schema.add_relation("B", 1).unwrap();
    let dot = LabelSet::singleton(Label(0));
    // A(x) with x >= threshold, then B(y) with y == x.
    let build = |threshold: i64| {
        let mut builder = PceaBuilder::new(1);
        let q0 = builder.add_state();
        let q1 = builder.add_state();
        builder.add_initial_transition(
            UnaryPredicate::Relation(a).and(UnaryPredicate::Cmp {
                pos: 0,
                op: CmpOp::Ge,
                value: Value::Int(threshold),
            }),
            dot,
            q0,
        );
        builder.add_transition(
            vec![(q0, EqPredicate::on_positions(a, [0usize], b, [0usize]))],
            UnaryPredicate::Relation(b),
            dot,
            q1,
        );
        builder.mark_final(q1);
        builder.build()
    };
    let mut rt = Runtime::new(2);
    let id = rt
        .register(QuerySpec::new("gate5", build(5), WindowPolicy::Count(100)))
        .unwrap();
    let tup_a = |v: i64| Tuple::new(a, vec![Value::Int(v)]);
    let tup_b = |v: i64| Tuple::new(b, vec![Value::Int(v)]);
    // Before the swap: A(5) and A(9) open runs under threshold 5.
    let pre = rt.push_batch(&[tup_a(5), tup_a(9)]);
    assert!(pre.is_empty());
    rt.replace(
        id,
        QuerySpec::new("gate8", build(8), WindowPolicy::Count(100)),
    )
    .unwrap();
    // After the swap: A(6) is rejected by the *new* threshold, but the
    // pre-swap A(5) run was handed over and still completes on B(5).
    let post = rt.push_batch(&[tup_a(6), tup_b(5), tup_b(9), tup_b(6)]);
    let positions: Vec<u64> = post.iter().map(|e| e.position).collect();
    assert_eq!(positions, vec![3, 4], "B(5) and B(9) complete, B(6) not");
    assert_eq!(rt.query_name(id), Some("gate8"));
}

#[test]
fn replace_rejects_incompatible_handoffs_and_leaves_state_intact() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 120);
    let window = WindowPolicy::Count(30);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &window);
    let mut events = rt.push_batch(&stream[..60]);
    let (name0, pcea0, _) = &specs[0];

    // Unknown / retired id.
    assert!(matches!(
        rt.replace(
            QueryId(99),
            QuerySpec::new("x", pcea0.clone(), window.clone())
        ),
        Err(RuntimeError::UnknownQuery { .. })
    ));
    // Different skeleton (another query's automaton).
    assert!(matches!(
        rt.replace(
            ids[0],
            QuerySpec::new("skel", specs[2].1.clone(), window.clone())
        ),
        Err(RuntimeError::ReplaceIncompatible { .. })
    ));
    // Window kind change.
    assert!(matches!(
        rt.replace(
            ids[0],
            QuerySpec::new(
                "kind",
                pcea0.clone(),
                WindowPolicy::Time {
                    duration: 5,
                    ts_pos: 0
                }
            )
        ),
        Err(RuntimeError::ReplaceIncompatible { .. })
    ));
    // Partition change.
    assert!(matches!(
        rt.replace(
            ids[0],
            QuerySpec::new("part", pcea0.clone(), window.clone())
                .with_partition(Partition::ByKey { pos: 0 })
        ),
        Err(RuntimeError::ReplaceIncompatible { .. })
    ));
    // The rejected swaps left everything untouched: the run continues
    // exactly like an undisturbed one.
    assert_eq!(rt.query_name(ids[0]), Some(name0.as_str()));
    events.extend(rt.push_batch(&stream[60..]));
    let want = uninterrupted(&specs, &window, &stream, 2);
    assert_eq!(sorted(events), want);
}

/// Window resize within a kind is accepted; widening converges (runs
/// pruned under the old bound stay gone, new spans use the new bound).
#[test]
fn replace_resizes_windows_within_a_kind() {
    let mut schema = Schema::new();
    let pat = pattern_to_pcea(&mut schema, "A(x) ; B(x)").unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let tup_a = |v: i64| Tuple::new(a, vec![Value::Int(v)]);
    let tup_b = |v: i64| Tuple::new(b, vec![Value::Int(v)]);
    let mut rt = Runtime::new(2);
    let id = rt
        .register(QuerySpec::new("w2", pat.clone(), WindowPolicy::Count(2)))
        .unwrap();
    assert!(rt.push_batch(&[tup_a(1)]).is_empty());
    rt.replace(id, QuerySpec::new("w50", pat, WindowPolicy::Count(50)))
        .unwrap();
    // Span 0..3 exceeds the old window 2 but fits the widened 50; the
    // pre-swap run survives because position 0 never expired under the
    // old bound before the swap.
    let events = rt.push_batch(&[tup_b(9), tup_b(1)]);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].position, 2);
}

/// Retired ids survive the snapshot: restored id numbering (and
/// `query_name`) lines up, and the retired id stays rejected.
#[test]
fn restore_preserves_ids_across_deregistration() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 80);
    let window = WindowPolicy::Count(20);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &window);
    rt.push_batch(&stream[..40]);
    rt.deregister(ids[1]).unwrap();
    let snap = rt.snapshot().unwrap();
    assert_eq!(snap.num_queries(), specs.len() - 1);
    drop(rt);
    let mut rt2 = Runtime::restore(&snap, 3).unwrap();
    assert_eq!(rt2.num_queries(), specs.len() - 1);
    assert_eq!(rt2.query_name(ids[0]), Some("q0_pinned"));
    assert_eq!(rt2.query_name(ids[1]), Some("q0_keyed"), "name outlives");
    assert_eq!(
        rt2.deregister(ids[1]),
        Err(RuntimeError::UnknownQuery { id: ids[1] })
    );
    // The survivors keep evaluating, and a *new* registration gets the
    // next dense id.
    let next = rt2
        .register(QuerySpec::new("late", specs[0].1.clone(), window.clone()))
        .unwrap();
    assert_eq!(next.0 as usize, specs.len());
    let events = rt2.push_batch(&stream[40..]);
    assert!(events.iter().all(|e| e.query != ids[1]));
}

/// Restored per-query counters: positions seen before the crash are
/// preserved (summed across the new layout, not multiplied by it).
#[test]
fn restore_preserves_engine_counters_once() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 100);
    let window = WindowPolicy::Count(25);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &window);
    rt.push_batch(&stream);
    let before = rt.stats();
    let positions_of = |stats: &RuntimeStats, id: QueryId| {
        stats
            .per_query
            .iter()
            .find(|(q, _)| *q == id)
            .map(|(_, st)| st.positions)
            .unwrap()
    };
    let snap = rt.snapshot().unwrap();
    drop(rt);
    // Restore into MORE shards: a naive restore would replicate the
    // counters per shard and overreport by the shard count.
    let rt2 = Runtime::restore(&snap, 4).unwrap();
    let after = rt2.stats();
    for &id in &ids {
        assert_eq!(
            positions_of(&after, id),
            positions_of(&before, id),
            "query {id:?}"
        );
    }
}

/// Closure predicates cannot round-trip: the snapshot fails up front,
/// before any shard is fenced.
#[test]
fn snapshot_rejects_closure_predicates() {
    let mut schema = Schema::new();
    let a = schema.add_relation("A", 1).unwrap();
    let mut builder = PceaBuilder::new(1);
    let q0 = builder.add_state();
    builder.add_initial_transition(
        UnaryPredicate::Relation(a).and(UnaryPredicate::Custom(std::sync::Arc::new(
            |t: &Tuple| t.values()[0] != Value::Int(13),
        ))),
        LabelSet::singleton(Label(0)),
        q0,
    );
    builder.mark_final(q0);
    let mut rt = Runtime::new(2);
    rt.register(QuerySpec::new(
        "custom",
        builder.build(),
        WindowPolicy::Count(5),
    ))
    .unwrap();
    rt.push(&Tuple::new(a, vec![Value::Int(1)]));
    assert!(matches!(rt.snapshot(), Err(SnapshotError::Wire(_))));
    // The runtime is unharmed by the refused snapshot.
    let events = rt.push(&Tuple::new(a, vec![Value::Int(2)]));
    assert_eq!(events.len(), 1);
    assert_eq!(rt.stats().snapshots.snapshots_taken, 0);
}

/// A runtime restored from a ByKey time-window snapshot whose shard
/// replicas clamped out-of-order timestamps *differently* must itself
/// remain snapshottable: the restore-time clock merge re-clamps the
/// interleaved ring (regression test — raw interleaving produced a
/// ring the decoder rejects, making second-generation snapshots
/// unrestorable).
#[test]
fn restored_runtime_resnapshots_after_out_of_order_timestamps() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let specs = vec![("timed_keyed".to_string(), pcea, Partition::ByKey { pos: 1 })];
    // Deliberate timestamp-contract violations, spread across keys so
    // different shard replicas clamp at different floors.
    let stream: Vec<Tuple> = (0..60)
        .map(|i| {
            let rel = if i % 2 == 0 { a } else { b };
            let ts = if i % 7 == 3 { 0 } else { i as i64 };
            Tuple::new(rel, vec![Value::Int(ts), Value::Int((i % 5) as i64)])
        })
        .collect();
    let window = WindowPolicy::Time {
        duration: 20,
        ts_pos: 0,
    };
    let mut rt = Runtime::new(3);
    register_all(&mut rt, &specs, &window);
    rt.push_batch(&stream);
    assert!(
        rt.stats().ts_regressions() > 0,
        "the stream must violate the timestamp contract"
    );
    let snap = rt.snapshot().unwrap();
    drop(rt);
    let mut rt2 = Runtime::restore(&snap, 2).expect("first restore");
    rt2.push_batch(&stream[..10]);
    let bytes = rt2.snapshot().unwrap().to_bytes().unwrap();
    let rt3 = Runtime::restore(&Snapshot::from_bytes(&bytes).unwrap(), 4)
        .expect("second-generation snapshot restores too");
    assert_eq!(rt3.num_queries(), 1);
}

/// A bit-rotted (or crafted) snapshot must error out of `restore`, not
/// panic: here the epoch-position header is rewound below the captured
/// state, which `Snapshot::from_bytes` cannot see (blobs are opaque)
/// but `Runtime::restore` must reject.
#[test]
fn restore_rejects_position_behind_captured_state() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 50);
    let mut rt = Runtime::new(2);
    register_all(&mut rt, &specs, &WindowPolicy::Count(10));
    rt.push_batch(&stream);
    let mut bytes = rt.snapshot().unwrap().to_bytes().unwrap();
    // Header layout: 8 magic bytes, 4 version bytes, then the epoch
    // position as a little-endian u64 — rewind it to 1.
    bytes[12..20].copy_from_slice(&1u64.to_le_bytes());
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.position(), 1);
    assert!(matches!(
        Runtime::restore(&snap, 2),
        Err(SnapshotError::Wire(_))
    ));
}

/// Query definitions round-trip through snapshot bytes: the restored
/// runtime re-registers from the decoded specs, and those specs are
/// inspectable via `Snapshot::query_specs`.
#[test]
fn definitions_roundtrip_through_bytes() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &WindowPolicy::Count(7));
    let bytes = rt.snapshot().unwrap().to_bytes().unwrap();
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    let decoded: Vec<(QueryId, String, Partition, WindowPolicy)> = snap
        .query_specs()
        .map(|(id, spec)| (id, spec.name.clone(), spec.partition, spec.window.clone()))
        .collect();
    let want: Vec<(QueryId, String, Partition, WindowPolicy)> = ids
        .iter()
        .zip(&specs)
        .map(|(&id, (name, _, partition))| (id, name.clone(), *partition, WindowPolicy::Count(7)))
        .collect();
    assert_eq!(decoded, want);
}

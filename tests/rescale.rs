//! Live elastic resharding (`Runtime::rescale`) and the autoscaling
//! loop (`cer_core::autoscale`).
//!
//! The core property mirrors `checkpoint_restore.rs`, but with *no
//! restart*: `prefix → rescale(n→m) → suffix` on one live runtime must
//! produce output multisets identical to an uninterrupted run — both
//! growing and shrinking, at any cut, across partition modes and count
//! and time windows, and with producers pushing concurrently through
//! the fence. Unlike restore, the move is zero-wire: state crosses
//! worker sets as in-memory values, never through serialization — the
//! snapshot serialization counters stay untouched, and that is asserted
//! on every differential run.

use pcea::engine::checkpoint::Snapshot;
use pcea::prelude::*;
use proptest::prelude::*;

/// Deterministic dense stream over all relations of `schema`, one value
/// domain per attribute position (same shape as `checkpoint_restore.rs`).
fn mixed_stream(schema: &Schema, n: usize) -> Vec<Tuple> {
    let rels: Vec<_> = schema.relations().collect();
    (0..n)
        .map(|i| {
            let rel = rels[(i * 7 + 3) % rels.len()];
            let arity = schema.arity(rel);
            let values = (0..arity)
                .map(|k| Value::Int(((i * 13 + k * 5 + 1) % 3) as i64))
                .collect();
            Tuple::new(rel, values)
        })
        .collect()
}

fn sorted(mut events: Vec<MatchEvent>) -> Vec<MatchEvent> {
    events.sort();
    events
}

/// Front-end-compiled spec set: HCQ compiler and pattern language, both
/// partition modes — the state surface a rescale must move intact.
fn spec_set(schema: &mut Schema) -> Vec<(String, Pcea, Partition)> {
    let q0 = parse_query(schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
    let q0_pcea = compile_hcq(schema, &q0).unwrap().pcea;
    let star = parse_query(schema, "QS(x, y1, y2) <- A0(x), A1(x, y1), A2(x, y2)").unwrap();
    let star_pcea = compile_hcq(schema, &star).unwrap().pcea;
    let pat = pattern_to_pcea(schema, "A(x) ; B(x)").unwrap().pcea;
    vec![
        ("q0_pinned".into(), q0_pcea.clone(), Partition::ByQuery),
        ("q0_keyed".into(), q0_pcea, Partition::ByKey { pos: 0 }),
        ("star_pinned".into(), star_pcea, Partition::ByQuery),
        ("pat_keyed".into(), pat, Partition::ByKey { pos: 0 }),
    ]
}

fn register_all(
    rt: &mut Runtime,
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
) -> Vec<QueryId> {
    specs
        .iter()
        .map(|(name, pcea, partition)| {
            rt.register(
                QuerySpec::new(name.clone(), pcea.clone(), window.clone())
                    .with_partition(*partition),
            )
            .unwrap()
        })
        .collect()
}

/// Uninterrupted reference: one runtime sees the whole stream.
fn uninterrupted(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    shards: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards);
    register_all(&mut rt, specs, window);
    sorted(rt.push_batch(stream))
}

/// Rescaled run: prefix → `rescale(shards_new)` → suffix, all on the
/// *same* runtime. Also asserts the zero-wire acceptance property (the
/// snapshot serialization path never ran) and the rescale counters.
fn rescaled(
    specs: &[(String, Pcea, Partition)],
    window: &WindowPolicy,
    stream: &[Tuple],
    cut: usize,
    shards_old: usize,
    shards_new: usize,
) -> Vec<MatchEvent> {
    let mut rt = Runtime::new(shards_old);
    register_all(&mut rt, specs, window);
    let mut events = rt.push_batch(&stream[..cut]);
    rt.rescale(shards_new).expect("rescale");
    assert_eq!(rt.num_shards(), shards_new);
    events.extend(rt.push_batch(&stream[cut..]));
    let stats = rt.stats();
    // Zero-wire: the move touched no serialization counter.
    assert_eq!(stats.snapshots.snapshots_taken, 0);
    assert!(
        stats.snapshots.shard_serialize_nanos.is_empty(),
        "rescale must not serialize shard state"
    );
    assert_eq!(stats.rescales.rescales, 1);
    assert_eq!(stats.rescales.last_fence_pos, Some(cut as u64));
    assert_eq!(stats.rescales.shard_move_nanos.len(), shards_old);
    sorted(events)
}

#[test]
fn rescale_matches_uninterrupted_count_windows() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 240);
    let mut any = false;
    for w in [3u64, 16, 1000] {
        let window = WindowPolicy::Count(w);
        for (shards_old, shards_new) in [(1usize, 4usize), (4, 1), (2, 3), (3, 2), (2, 2)] {
            let want = uninterrupted(&specs, &window, &stream, shards_old);
            for cut in [0usize, 1, 97, 239, 240] {
                let got = rescaled(&specs, &window, &stream, cut, shards_old, shards_new);
                assert_eq!(
                    got, want,
                    "w={w}, cut={cut}, shards {shards_old}->{shards_new}"
                );
                any |= !want.is_empty();
            }
        }
    }
    assert!(any, "the workload must produce matches somewhere");
}

#[test]
fn rescale_matches_uninterrupted_time_windows() {
    let mut schema = Schema::new();
    let q = parse_query(&mut schema, "Q(ta, tb, x) <- A(ta, x), B(tb, x)").unwrap();
    let pcea = compile_hcq(&schema, &q).unwrap().pcea;
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let specs = vec![
        ("timed_pinned".to_string(), pcea.clone(), Partition::ByQuery),
        ("timed_keyed".to_string(), pcea, Partition::ByKey { pos: 1 }),
    ];
    // Non-decreasing timestamps at attribute 0, join key at attribute 1.
    let stream: Vec<Tuple> = (0..200)
        .map(|i| {
            let rel = if (i / 3) % 2 == 0 { a } else { b };
            Tuple::new(
                rel,
                vec![Value::Int(i as i64 / 2), Value::Int((i % 3) as i64)],
            )
        })
        .collect();
    for duration in [0i64, 4, 25, 10_000] {
        let window = WindowPolicy::Time {
            duration,
            ts_pos: 0,
        };
        for (shards_old, shards_new) in [(1usize, 3usize), (3, 1), (2, 4), (4, 2)] {
            let want = uninterrupted(&specs, &window, &stream, shards_old);
            for cut in [11usize, 100, 137] {
                let got = rescaled(&specs, &window, &stream, cut, shards_old, shards_new);
                assert_eq!(
                    got, want,
                    "duration={duration}, cut={cut}, shards {shards_old}->{shards_new}"
                );
            }
        }
    }
}

/// Chained moves: the runtime survives growing and shrinking repeatedly
/// mid-stream, and the aggregate output is still exact.
#[test]
fn chained_rescales_stay_exact() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 300);
    let window = WindowPolicy::Count(20);
    let want = uninterrupted(&specs, &window, &stream, 1);
    let mut rt = Runtime::new(1);
    register_all(&mut rt, &specs, &window);
    let mut events = Vec::new();
    let plan = [2usize, 4, 2, 3, 1];
    for (step, chunk) in stream.chunks(stream.len() / (plan.len() + 1)).enumerate() {
        events.extend(rt.push_batch(chunk));
        if let Some(&to) = plan.get(step) {
            rt.rescale(to).unwrap();
            assert_eq!(rt.num_shards(), to);
        }
    }
    assert_eq!(sorted(events), want);
    let stats = rt.stats();
    assert_eq!(stats.rescales.rescales, plan.len() as u64);
    assert_eq!(stats.snapshots.snapshots_taken, 0);
    assert!(stats.snapshots.shard_serialize_nanos.is_empty());
    // The journal carries one Rescale event per move, in order.
    let moves: Vec<(usize, usize)> = rt
        .events()
        .into_iter()
        .filter_map(|e| match e.item {
            PipelineEvent::Rescale { from, to, .. } => Some((from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(moves, vec![(1, 2), (2, 4), (4, 2), (2, 3), (3, 1)]);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The acceptance property as a proptest: random cut, shard counts
    /// on both sides, window size, partition mix — a mid-stream rescale
    /// is multiset-invisible in the output.
    #[test]
    fn rescale_differential(
        cut in 0usize..160,
        shards_old in 1usize..5,
        shards_new in 1usize..5,
        w in prop_oneof![Just(2u64), Just(9), Just(64), Just(1000)],
    ) {
        let mut schema = Schema::new();
        let specs = spec_set(&mut schema);
        let stream = mixed_stream(&schema, 160);
        let window = WindowPolicy::Count(w);
        let want = uninterrupted(&specs, &window, &stream, shards_old);
        let got = rescaled(&specs, &window, &stream, cut, shards_old, shards_new);
        prop_assert_eq!(got, want);
    }
}

/// The no-stop-the-world test: producers ingest concurrently *while*
/// `rescale` runs — several times, in both directions. Because nothing
/// restarts, the subscription sees every match; the receipts reveal the
/// stamped order and the whole run must equal the sync oracle on it.
#[test]
fn rescale_under_live_producers_is_invisible() {
    use std::sync::Mutex;
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 4_000);
    let window = WindowPolicy::Count(24);
    for (shards_start, plan, producers) in [
        (2usize, vec![3usize, 1, 4], 3usize),
        (1, vec![4, 2], 4),
        (4, vec![1], 2),
    ] {
        let mut rt = Runtime::new(RuntimeConfig::new(shards_start).with_ingest(IngestConfig {
            queue_capacity: 256, // small: real backpressure through the fence
            ..IngestConfig::default()
        }));
        register_all(&mut rt, &specs, &window);
        let sub = rt.subscribe_with(
            SubscriptionFilter::All,
            usize::MAX,
            BackpressurePolicy::Block,
        );
        let receipts: Mutex<Vec<(u64, Vec<Tuple>)>> = Mutex::new(Vec::new());
        let chunk = stream.len().div_ceil(producers);
        std::thread::scope(|scope| {
            for slice in stream.chunks(chunk) {
                let handle = rt.ingest_handle();
                let receipts = &receipts;
                scope.spawn(move || {
                    for batch in slice.chunks(23) {
                        let receipt = handle.push_batch(batch).unwrap();
                        assert_eq!(receipt.dropped, 0, "Block never drops");
                        receipts
                            .lock()
                            .unwrap()
                            .push((receipt.positions.start, batch.to_vec()));
                    }
                });
            }
            // Meanwhile, in the middle of the firehose: live moves.
            // Producers are actively reserving/staging blocks right now.
            for &to in &plan {
                rt.rescale(to).expect("rescale under live producers");
                assert_eq!(rt.num_shards(), to);
            }
        });
        rt.drain();
        let events = sorted(sub.drain());
        let stats = rt.stats();
        assert_eq!(stats.rescales.rescales, plan.len() as u64);
        assert_eq!(stats.snapshots.snapshots_taken, 0);
        assert!(stats.snapshots.shard_serialize_nanos.is_empty());

        // Reconstruct the stamped order from the receipts: gap-free.
        let mut stamped: Vec<(u64, Tuple)> = receipts
            .into_inner()
            .unwrap()
            .into_iter()
            .flat_map(|(start, batch)| {
                batch
                    .into_iter()
                    .enumerate()
                    .map(move |(k, t)| (start + k as u64, t))
            })
            .collect();
        stamped.sort_by_key(|(i, _)| *i);
        assert_eq!(stamped.len(), stream.len());
        assert!(stamped.iter().enumerate().all(|(k, (i, _))| *i == k as u64));
        let ordered: Vec<Tuple> = stamped.into_iter().map(|(_, t)| t).collect();

        let want = uninterrupted(&specs, &window, &ordered, 1);
        assert_eq!(
            events, want,
            "start={shards_start}, plan={plan:?}, producers={producers}"
        );
    }
}

/// Ordering guarantee: rescale serializes with every other control-plane
/// op (register / deregister / replace / snapshot) in program order —
/// all of them fence through the sequencer's control-block order and
/// none can deadlock against a live firehose. Output stays exact; the
/// journal records the ops in exactly the order they were issued.
#[test]
fn rescale_interleaves_with_control_plane_ops() {
    use std::sync::Mutex;
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 3_000);
    // Relations declared after the stream was built: the late-registered
    // query can never match, so it cannot disturb the differential.
    let z = parse_query(&mut schema, "QZ(x) <- Z1(x), Z2(x)").unwrap();
    let z_pcea = compile_hcq(&schema, &z).unwrap().pcea;
    let window = WindowPolicy::Count(24);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &window);
    let sub = rt.subscribe_with(
        SubscriptionFilter::All,
        usize::MAX,
        BackpressurePolicy::Block,
    );
    // An identical recompile for the mid-stream replace.
    let mut schema2 = Schema::new();
    let fresh = spec_set(&mut schema2);

    let receipts: Mutex<Vec<(u64, Vec<Tuple>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for slice in stream.chunks(1_000) {
            let handle = rt.ingest_handle();
            let receipts = &receipts;
            scope.spawn(move || {
                for batch in slice.chunks(17) {
                    let receipt = handle.push_batch(batch).unwrap();
                    receipts
                        .lock()
                        .unwrap()
                        .push((receipt.positions.start, batch.to_vec()));
                }
            });
        }
        // The whole control plane, interleaved against the firehose.
        rt.rescale(3).unwrap();
        let snap = rt.snapshot().unwrap();
        assert!(snap.position() <= stream.len() as u64);
        let zid = rt
            .register(
                QuerySpec::new("qz".to_string(), z_pcea.clone(), window.clone())
                    .with_partition(Partition::ByQuery),
            )
            .unwrap();
        rt.rescale(1).unwrap();
        rt.replace(
            ids[0],
            QuerySpec::new(
                "q0_pinned_v2".to_string(),
                fresh[0].1.clone(),
                window.clone(),
            )
            .with_partition(fresh[0].2),
        )
        .unwrap();
        rt.deregister(zid).unwrap();
        rt.rescale(4).unwrap();
    });
    rt.drain();
    let events = sorted(sub.drain());

    // Journal order == program order for the control ops.
    let control: Vec<&'static str> = rt
        .events()
        .into_iter()
        .filter_map(|e| match e.item {
            PipelineEvent::Rescale { .. } => Some("rescale"),
            PipelineEvent::SnapshotTaken { .. } => Some("snapshot"),
            PipelineEvent::QueryRegistered { .. } => Some("register"),
            PipelineEvent::QueryDeregistered { .. } => Some("deregister"),
            PipelineEvent::QueryReplaced { .. } => Some("replace"),
            _ => None,
        })
        .collect();
    // The initial registrations come first, then the interleaved ops.
    let (setup, ops) = control.split_at(specs.len());
    assert!(setup.iter().all(|k| *k == "register"));
    assert_eq!(
        ops,
        [
            "rescale",
            "snapshot",
            "register",
            "rescale",
            "replace",
            "deregister",
            "rescale"
        ]
    );

    // Differential: identical replace + never-matching register are
    // invisible, so the run equals the plain oracle.
    let mut stamped: Vec<(u64, Tuple)> = receipts
        .into_inner()
        .unwrap()
        .into_iter()
        .flat_map(|(start, batch)| {
            batch
                .into_iter()
                .enumerate()
                .map(move |(k, t)| (start + k as u64, t))
        })
        .collect();
    stamped.sort_by_key(|(i, _)| *i);
    let ordered: Vec<Tuple> = stamped.into_iter().map(|(_, t)| t).collect();
    let want = uninterrupted(&specs, &window, &ordered, 1);
    assert_eq!(events, want);
}

/// Out-of-range targets are rejected up front, with the runtime (and
/// its counters) untouched.
#[test]
fn rescale_rejects_invalid_shard_counts() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 60);
    let window = WindowPolicy::Count(10);
    let want = uninterrupted(&specs, &window, &stream, 2);
    let mut rt = Runtime::new(2);
    register_all(&mut rt, &specs, &window);
    let mut events = rt.push_batch(&stream[..30]);
    for bad in [0usize, 65, 1000] {
        assert_eq!(
            rt.rescale(bad),
            Err(RuntimeError::InvalidShardCount { shards: bad })
        );
    }
    assert_eq!(rt.num_shards(), 2);
    assert_eq!(rt.stats().rescales, RescaleCounters::default());
    events.extend(rt.push_batch(&stream[30..]));
    assert_eq!(sorted(events), want);
    // The stable error code is wired through the unified table.
    let err: Error = RuntimeError::InvalidShardCount { shards: 0 }.into();
    assert_eq!(err.code(), ErrorCode::InvalidShardCount);
}

/// Snapshot compatibility: the extract/encode split behind `snapshot`
/// keeps the byte format at version 1, a rescaled runtime snapshots and
/// restores exactly, and capture is copy-on-fence — two back-to-back
/// snapshots of an untouched runtime are byte-identical (capture never
/// mutates live evaluator state).
#[test]
fn snapshot_stays_compatible_across_rescale() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 200);
    let window = WindowPolicy::Count(30);
    let want = uninterrupted(&specs, &window, &stream, 2);

    let mut rt = Runtime::new(2);
    register_all(&mut rt, &specs, &window);
    let mut events = rt.push_batch(&stream[..80]);
    rt.rescale(3).unwrap();
    events.extend(rt.push_batch(&stream[80..120]));

    let bytes = rt.snapshot().unwrap().to_bytes().unwrap();
    // Header: 8 magic bytes, then the format version as a LE u32 — the
    // wire layout did not change, so the version must still be 1.
    assert_eq!(&bytes[..8], b"CERSNAP\0");
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);

    // Copy-on-fence: capturing again without new input re-encodes the
    // same state from fresh clones, bit for bit.
    let again = rt.snapshot().unwrap().to_bytes().unwrap();
    assert_eq!(bytes, again, "capture must not mutate live state");

    // The snapshot of the rescaled runtime restores into yet another
    // shard count and finishes the stream exactly.
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.origin_shards(), 3);
    drop(rt);
    let mut rt2 = Runtime::restore(&snap, 4).unwrap();
    events.extend(rt2.push_batch(&stream[120..]));
    assert_eq!(sorted(events), want);
}

/// Rescale also leaves its mark in the exported metrics — and leaves
/// the snapshot-serialize histogram empty (the zero-wire property, seen
/// from the metrics surface).
#[test]
fn rescale_metrics_export() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 100);
    let window = WindowPolicy::Count(10);
    let mut rt = Runtime::new(1);
    register_all(&mut rt, &specs, &window);
    rt.push_batch(&stream[..50]);
    rt.rescale(2).unwrap();
    rt.rescale(4).unwrap();
    rt.push_batch(&stream[50..]);
    let snap = rt.metrics_snapshot();
    let find = |name: &str| {
        snap.metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    match &find("cer_rescales_total").value {
        MetricValue::Counter(v) => assert_eq!(*v, 2),
        other => panic!("counter expected, got {other:?}"),
    }
    match &find("cer_rescale_nanos").value {
        MetricValue::Histogram(h) => assert_eq!(h.count(), 2),
        other => panic!("histogram expected, got {other:?}"),
    }
    match &find("cer_snapshot_serialize_nanos").value {
        MetricValue::Histogram(h) => assert_eq!(h.count(), 0, "zero-wire"),
        other => panic!("histogram expected, got {other:?}"),
    }
    let text = rt.metrics_text();
    validate_prometheus_text(&text).unwrap();
    assert!(text.contains("cer_rescales_total 2"));
}

/// The closed loop: a hysteresis controller driving `autoscale_tick`
/// grows the runtime under (synthetic) pressure, shrinks it back when
/// idle, honors cooldown, and journals every decision before its move.
#[test]
fn autoscale_loop_scales_up_and_down() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 120);
    let window = WindowPolicy::Count(16);
    let want = uninterrupted(&specs, &window, &stream, 2);
    let mut rt = Runtime::new(2);
    register_all(&mut rt, &specs, &window);
    let mut events = rt.push_batch(&stream[..60]);

    // A hair-trigger "hot" policy: occupancy 0.0 always clears the
    // scale-up bar, so one tick doubles the shard count.
    let mut hot = Controller::new(AutoscalePolicy {
        scale_up_occupancy: 0.0,
        up_after: 1,
        cooldown_ticks: 2,
        ..AutoscalePolicy::default()
    });
    assert_eq!(rt.autoscale_tick(&mut hot).unwrap(), Some((2, 4)));
    assert_eq!(rt.num_shards(), 4);
    // Cooldown: the next two ticks must hold even though still "hot".
    assert_eq!(rt.autoscale_tick(&mut hot).unwrap(), None);
    assert_eq!(rt.autoscale_tick(&mut hot).unwrap(), None);
    assert_eq!(rt.autoscale_tick(&mut hot).unwrap(), Some((4, 8)));
    assert_eq!(rt.num_shards(), 8);

    // An always-cold policy halves back down (the runtime is idle, so
    // occupancy 0 is under any positive floor).
    let mut cold = Controller::new(AutoscalePolicy {
        scale_up_occupancy: 2.0, // unreachable: occupancy is ≤ 1
        scale_down_occupancy: 0.5,
        down_after: 1,
        cooldown_ticks: 0,
        ..AutoscalePolicy::default()
    });
    assert_eq!(rt.autoscale_tick(&mut cold).unwrap(), Some((8, 4)));
    assert_eq!(rt.autoscale_tick(&mut cold).unwrap(), Some((4, 2)));
    assert_eq!(rt.num_shards(), 2);

    // Decisions are journaled, each immediately before its Rescale.
    let journal: Vec<(bool, usize, usize)> = rt
        .events()
        .into_iter()
        .filter_map(|e| match e.item {
            PipelineEvent::AutoscaleDecision { from, to, .. } => Some((true, from, to)),
            PipelineEvent::Rescale { from, to, .. } => Some((false, from, to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        journal,
        vec![
            (true, 2, 4),
            (false, 2, 4),
            (true, 4, 8),
            (false, 4, 8),
            (true, 8, 4),
            (false, 8, 4),
            (true, 4, 2),
            (false, 4, 2),
        ]
    );

    // And the moves were, as ever, invisible in the output.
    events.extend(rt.push_batch(&stream[60..]));
    assert_eq!(sorted(events), want);
}

/// Subscriptions, ingest handles and query ids all survive a rescale —
/// the move swaps workers underneath them without tearing any of the
/// public handles down.
#[test]
fn handles_and_ids_survive_rescale() {
    let mut schema = Schema::new();
    let specs = spec_set(&mut schema);
    let stream = mixed_stream(&schema, 120);
    let window = WindowPolicy::Count(16);
    let mut rt = Runtime::new(2);
    let ids = register_all(&mut rt, &specs, &window);
    let sub = rt.subscribe_with(
        SubscriptionFilter::Query(ids[0]),
        usize::MAX,
        BackpressurePolicy::Block,
    );
    let handle = rt.ingest_handle(); // cloned *before* the move
    let receipt = handle.push_batch(&stream[..40]).unwrap();
    assert_eq!(receipt.positions, (0..40));
    rt.rescale(4).unwrap();
    // The pre-rescale handle keeps stamping into the new worker set.
    let receipt = handle.push_batch(&stream[40..]).unwrap();
    assert_eq!(receipt.positions, (40..120));
    rt.drain();
    for (&id, (name, ..)) in ids.iter().zip(&specs) {
        assert_eq!(rt.query_name(id), Some(name.as_str()), "ids are stable");
    }
    let got: Vec<MatchEvent> = sub.drain();
    let want: Vec<MatchEvent> = uninterrupted(&specs, &window, &stream, 2)
        .into_iter()
        .filter(|e| e.query == ids[0])
        .collect();
    assert_eq!(sorted(got), want, "the filtered subscription saw it all");
}

//! Cross-crate tests of the pattern language: compiled patterns are
//! unambiguous PCEA that the streaming engine evaluates correctly under
//! windows, and the language's expressiveness claims hold end to end.

use pcea::automata::reference::fuzz_unambiguous;
use pcea::common::tuple::tup;
use pcea::lang::LangError;
use pcea::prelude::*;
use proptest::prelude::*;

/// Patterns covering every language construct.
const PATTERNS: &[&str] = &[
    "T(x) && S(x, y) ; R(x, y)",
    "A(x) ; B(x)",
    "A(x) ; B(x) ; C(x)",
    "A(x) | B(x)",
    "(A(x) | B(x)) ; C(x)",
    "A(x) && B(x) && C(x)",
    "A(x)+",
    "S(x, _)+",
    "ALERT(x) ; BUY(x, _)+ [1 > 1]",
    "W(2, y) ; R(y)",
    "A(x) && B(x) ; C(x) | D(x)",
];

fn compile(text: &str) -> (Schema, CompiledPattern) {
    let mut schema = Schema::new();
    let c = pattern_to_pcea(&mut schema, text).unwrap();
    (schema, c)
}

/// Every pattern compiles to an automaton that is unambiguous on fuzzed
/// streams — the precondition of Theorem 5.1.
#[test]
fn all_patterns_fuzz_unambiguous() {
    for text in PATTERNS {
        let (schema, c) = compile(text);
        fuzz_unambiguous(&c.pcea, &schema, 7, 25, 0xC0FFEE)
            .unwrap_or_else(|e| panic!("{text}: {e}"));
    }
}

// Engine ≡ reference on every pattern, random dense streams, several
// windows.
proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_reference_on_patterns(
        pi in 0..PATTERNS.len(),
        raw in proptest::collection::vec((0usize..8, 0i64..3, 0i64..3), 0..10),
        w in 0u64..12,
    ) {
        let (schema, c) = compile(PATTERNS[pi]);
        let rels: Vec<_> = schema.relations().collect();
        let stream: Vec<Tuple> = raw
            .iter()
            .map(|&(ri, a, b)| {
                let rel = rels[ri % rels.len()];
                let vals = [a, b];
                Tuple::new(
                    rel,
                    (0..schema.arity(rel)).map(|k| Value::Int(vals[k.min(1)])).collect(),
                )
            })
            .collect();
        let reference = ReferenceEval::new(&c.pcea, &stream);
        let mut engine = StreamingEvaluator::new(c.pcea.clone(), w);
        for (n, tu) in stream.iter().enumerate() {
            let mut got = engine.push_collect(tu);
            got.sort();
            got.dedup();
            prop_assert_eq!(
                got,
                reference.windowed_outputs_at(n, w),
                "{} at {} w={}", PATTERNS[pi], n, w
            );
        }
    }
}

/// The language expresses things no CQ can: order sensitivity.
#[test]
fn sequencing_beyond_cq() {
    let (schema, c) = compile("A(x) ; B(x)");
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let mut forward = StreamingEvaluator::new(c.pcea.clone(), 100);
    let n1: usize = [tup(a, [1i64]), tup(b, [1i64])]
        .iter()
        .map(|t| forward.push_count(t))
        .sum();
    let mut backward = StreamingEvaluator::new(c.pcea, 100);
    let n2: usize = [tup(b, [1i64]), tup(a, [1i64])]
        .iter()
        .map(|t| backward.push_count(t))
        .sum();
    assert_eq!((n1, n2), (1, 0));
}

/// Iteration under a window: chains must fit the window end to end.
#[test]
fn iteration_windowed() {
    let (schema, c) = compile("A(x)+");
    let a = schema.relation("A").unwrap();
    let stream: Vec<Tuple> = (0..6).map(|_| tup(a, [1i64])).collect();
    // w = 2: chains may reach back at most 2 positions.
    let mut engine = StreamingEvaluator::new(c.pcea.clone(), 2);
    let counts: Vec<usize> = stream.iter().map(|t| engine.push_count(t)).collect();
    // At n: subsets of {n-2, n-1} ∪ {n} containing n: 1, 2, 4, 4, 4, 4.
    assert_eq!(counts, vec![1, 2, 4, 4, 4, 4]);
}

/// The anchoring discipline rejects exactly the unanchored patterns.
#[test]
fn anchoring_discipline() {
    let reject = [
        "S(x, y) ; A(x) ; R(y)",  // y cannot flow through A(x)
        "S(x, y) && T(y) ; A(x)", // y correlates S and T; A(x) gathers both but carries no y
    ];
    for text in reject {
        let mut schema = Schema::new();
        let err = pattern_to_pcea(&mut schema, text).unwrap_err();
        assert!(
            matches!(err, LangError::UnanchoredCorrelation { .. }),
            "{text}: {err:?}"
        );
    }
    // Anchored versions compile.
    let accept = ["S(x, y) ; A(x, y) ; R(y)", "S(x, y) && T(y) ; A(x, y)"];
    for text in accept {
        let mut schema = Schema::new();
        pattern_to_pcea(&mut schema, text).unwrap_or_else(|e| panic!("{text}: {e}"));
    }
}

/// Disjunction + engine: each branch yields its own label pattern.
#[test]
fn disjunction_end_to_end() {
    let (schema, c) = compile("(A(x) | B(x)) ; C(x)");
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let cc = schema.relation("C").unwrap();
    let mut engine = StreamingEvaluator::new(c.pcea, 100);
    engine.push(&tup(a, [1i64]));
    engine.push(&tup(b, [1i64]));
    let outs = engine.push_collect(&tup(cc, [1i64]));
    assert_eq!(outs.len(), 2);
    // One match used the A branch (label 0), the other the B branch
    // (label 1); both mark C (label 2) at position 2.
    let via_a = outs.iter().filter(|v| !v.get(Label(0)).is_empty()).count();
    let via_b = outs.iter().filter(|v| !v.get(Label(1)).is_empty()).count();
    assert_eq!((via_a, via_b), (1, 1));
    assert!(outs.iter().all(|v| v.get(Label(2)) == [2]));
}

/// The stock pattern from the example, on a reproducible feed.
#[test]
fn stock_pattern_end_to_end() {
    use pcea::common::gen::StockGen;
    let mut schema = Schema::new();
    let mut feed = StockGen::build(&mut schema, 5).unwrap();
    let c = pattern_to_pcea(&mut schema, "BUY(x, _) && SELL(x, _) ; ALERT(x)").unwrap();
    let mut engine = StreamingEvaluator::new(c.pcea, 32);
    let mut matches = 0usize;
    for _ in 0..20_000 {
        let t = feed.next_tuple().unwrap();
        let pos = engine.next_position();
        engine.push_for_each(&t, |v| {
            matches += 1;
            // The ALERT (label 2) is always the completing tuple.
            assert_eq!(v.get(Label(2)), [pos]);
            assert!(v.max_pos() == Some(pos));
        });
    }
    assert!(matches > 0, "the feed must trigger the pattern");
}

/// Iteration as a conjunct: `A(x)+ && B(x)` completes when either the
/// last chain step or the B gathers the other side.
#[test]
fn iteration_inside_conjunction() {
    let (schema, c) = compile("A(x)+ && B(x)");
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let stream = [tup(a, [1i64]), tup(a, [1i64]), tup(b, [1i64])];
    let reference = ReferenceEval::new(&c.pcea, &stream);
    // n=2 (B last): chains ending before it: {0}, {1}, {0,1} → 3.
    assert_eq!(reference.outputs_at(2).len(), 3);
    // n=1 (A last): chain {0,1} or {1} each gathering... B not seen yet.
    assert!(reference.outputs_at(1).is_empty());
    reference.check_unambiguous().unwrap();

    // B first, then the chain: completions via the A side.
    let stream2 = [tup(b, [1i64]), tup(a, [1i64]), tup(a, [1i64])];
    let reference2 = ReferenceEval::new(&c.pcea, &stream2);
    // n=1: chain {1} + B → 1. n=2: chains ending at 2: {2}, {1,2} → 2.
    assert_eq!(reference2.outputs_at(1).len(), 1);
    assert_eq!(reference2.outputs_at(2).len(), 2);
    reference2.check_unambiguous().unwrap();
}

/// Deep nesting: disjunction of conjunctions under sequencing.
#[test]
fn nested_conj_disj_seq() {
    let (schema, c) = compile("(A(x) && B(x) | D(x)) ; C(x)");
    let a = schema.relation("A").unwrap();
    let b = schema.relation("B").unwrap();
    let d = schema.relation("D").unwrap();
    let cc = schema.relation("C").unwrap();
    let stream = [
        tup(a, [1i64]),
        tup(b, [1i64]),
        tup(d, [1i64]),
        tup(cc, [1i64]),
    ];
    let reference = ReferenceEval::new(&c.pcea, &stream);
    // C gathers: the (A&&B) combo (one way: B completed it at pos 1 —
    // plus A-completes-last ordering is impossible here) and the D
    // branch: in total (A&&B);C has completer-B alternative {0,1} and
    // completer-A alternative (not matched on this order), plus D;C.
    assert_eq!(reference.outputs_at(3).len(), 2);
    reference.check_unambiguous().unwrap();
}

/// A chain of sequenced conjunctions: correlation flows through each
/// completing atom.
#[test]
fn sequenced_conjunctions() {
    let (schema, c) = compile("A(x) && B(x) ; C(x) && D(x) ; E(x)");
    for rel in ["A", "B", "C", "D", "E"] {
        assert!(schema.relation(rel).is_some());
    }
    let ids: Vec<_> = ["A", "B", "C", "D", "E"]
        .iter()
        .map(|r| schema.relation(r).unwrap())
        .collect();
    let stream: Vec<Tuple> = ids.iter().map(|&r| tup(r, [4i64])).collect();
    let reference = ReferenceEval::new(&c.pcea, &stream);
    assert_eq!(
        reference.outputs_at(4).len(),
        1,
        "in-order run matches once"
    );
    reference.check_unambiguous().unwrap();
    // Break the order: E before the C&&D step completes.
    let bad: Vec<Tuple> = [0usize, 1, 4, 2, 3]
        .iter()
        .map(|&k| stream[k].clone())
        .collect();
    let reference_bad = ReferenceEval::new(&c.pcea, &bad);
    assert!((0..5).all(|n| reference_bad.outputs_at(n).is_empty()));
}

//! # pcea — Parallelized Complex Event Automata
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! implementation of *Complex event recognition meets hierarchical
//! conjunctive queries* (Pinto & Riveros, PODS 2024).
//!
//! * [`common`] — values, schemas, tuples, streams, workload generators;
//! * [`automata`] — NFA/DFA/PFA, predicates, CCEA and PCEA;
//! * [`cq`] — conjunctive queries, hierarchy tests, q-trees and the
//!   HCQ→PCEA compiler (Theorem 4.1);
//! * [`lang`] — a CER pattern language (`;`, `&&`, `|`, `+`, filters)
//!   compiled to PCEA — the paper's first future-work item;
//! * [`engine`] — the streaming evaluator with logarithmic update time and
//!   output-linear-delay enumeration (Theorem 5.1), plus the sharded
//!   multi-query [`Runtime`](engine::Runtime) with an asynchronous
//!   ingestion pipeline ([`IngestHandle`](engine::IngestHandle) producers,
//!   backpressured shard queues, per-consumer
//!   [`Subscription`](engine::Subscription) channels),
//!   epoch-consistent checkpoint/restore + query hot-swap
//!   ([`engine::checkpoint`]), live elastic resharding with a
//!   closed autoscaling loop ([`engine::autoscale`]), and a durability
//!   subsystem — position-stamped WAL, incremental disk checkpoints,
//!   crash recovery ([`engine::durability`]);
//! * [`serve`] — a std-only TCP serving layer: length-framed wire
//!   protocol, thread-per-connection [`Server`](serve::Server), blocking
//!   [`Client`](serve::Client) and a load-generator binary;
//! * [`baselines`] — naive and CCEA-specialized evaluators for comparison,
//!   behind the same [`Evaluator`](engine::Evaluator) trait surface.
//!
//! ## Quickstart: one query, one evaluator
//!
//! ```
//! use pcea::prelude::*;
//!
//! // Parse the paper's hierarchical query Q0 and compile it to a PCEA.
//! let mut schema = Schema::new();
//! let query = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
//! let compiled = compile_hcq(&schema, &query).unwrap();
//!
//! // Evaluate it over the paper's example stream S0 under a sliding window.
//! let r = schema.relation("R").unwrap();
//! let s = schema.relation("S").unwrap();
//! let t = schema.relation("T").unwrap();
//! let mut engine = StreamingEvaluator::new(compiled.pcea, 100);
//! let mut n_outputs = 0;
//! for tuple in sigma0_prefix(r, s, t) {
//!     n_outputs += engine.push_count(&tuple);
//! }
//! assert_eq!(n_outputs, 2); // the two matches of Q0 on S0's first 8 tuples
//! ```
//!
//! ## Many queries, one stream: the sharded `Runtime`
//!
//! Production deployments serve many standing queries over one
//! firehose. The [`Runtime`](engine::Runtime) hosts a registry of
//! compiled queries — from the HCQ compiler *and* the pattern language —
//! routes each tuple only to the queries whose schema matches, and
//! spreads the work across sharded worker threads:
//!
//! ```
//! use pcea::prelude::*;
//!
//! let mut schema = Schema::new();
//! // One query from the HCQ compiler, one from the pattern language.
//! let q0 = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
//! let hcq = compile_hcq(&schema, &q0).unwrap();
//! let pat = pattern_to_pcea(&mut schema, "T(x) ; R(x, _)").unwrap();
//!
//! let mut runtime = Runtime::new(4); // four worker shards
//! let hcq_id = runtime
//!     .register(QuerySpec::new("q0", hcq.pcea, WindowPolicy::Count(100)))
//!     .unwrap();
//! let pat_id = runtime
//!     .register(
//!         QuerySpec::new("t_then_r", pat.pcea, WindowPolicy::Count(100))
//!             // Every join of this pattern is keyed on attribute 0, so it
//!             // may be key-partitioned across all shards.
//!             .with_partition(Partition::ByKey { pos: 0 }),
//!     )
//!     .unwrap();
//!
//! let r = schema.relation("R").unwrap();
//! let s = schema.relation("S").unwrap();
//! let t = schema.relation("T").unwrap();
//! let events = runtime.push_batch(&sigma0_prefix(r, s, t));
//! // Outputs are identical to per-query evaluators: Q0 matches twice at
//! // position 5, the sequential pattern once (T(2)@1 before R(2,11)@5).
//! assert_eq!(events.iter().filter(|e| e.query == hcq_id).count(), 2);
//! assert_eq!(events.iter().filter(|e| e.query == pat_id).count(), 1);
//! ```

pub use cer_automata as automata;
pub use cer_baselines as baselines;
pub use cer_common as common;
pub use cer_core as engine;
pub use cer_cq as cq;
pub use cer_lang as lang;
pub use cer_serve as serve;

/// One-stop imports for applications.
pub mod prelude {
    pub use cer_automata::pcea::{Pcea, PceaBuilder, StateId};
    pub use cer_automata::predicate::{CmpOp, EqPredicate, KeyExtractor, UnaryPredicate};
    pub use cer_automata::reference::ReferenceEval;
    pub use cer_automata::valuation::{Label, LabelSet, Valuation};
    pub use cer_common::gen::{sigma0_prefix, ChainGen, SensorGen, Sigma0Gen, StarGen, StockGen};
    pub use cer_common::{Schema, SliceStream, Stream, StreamExt, Tuple, Value, VecStream};
    pub use cer_core::api::Evaluator;
    pub use cer_core::autoscale::{AutoscalePolicy, Controller, LoadSignals, ScaleDecision};
    pub use cer_core::checkpoint::{Snapshot, SnapshotError};
    pub use cer_core::config::RuntimeConfig;
    pub use cer_core::durability::{
        CheckpointStats, DurabilityConfig, DurabilityError, DurabilityStatus, FsyncPolicy,
    };
    pub use cer_core::error::{Error, ErrorCode};
    pub use cer_core::evaluator::{run_to_end, StreamingEvaluator};
    pub use cer_core::ingest::{
        BackpressurePolicy, IngestConfig, IngestError, IngestHandle, IngestReceipt, QueueStats,
        Subscription, SubscriptionFilter,
    };
    pub use cer_core::metrics::PipelineEvent;
    pub use cer_core::runtime::{
        MatchEvent, Partition, QueryId, QuerySpec, RescaleCounters, Runtime, RuntimeError,
        RuntimeStats, SharedEvalStats, SnapshotCounters,
    };
    pub use cer_core::window::{WindowClock, WindowPolicy};
    pub use cer_core::{
        validate_prometheus_text, HistogramSnapshot, JournalEntry, Metric, MetricValue,
        MetricsSnapshot,
    };
    pub use cer_cq::compile::{compile_hcq, CompileError, CompiledQuery};
    pub use cer_cq::parser::{parse_query, QueryBuilder};
    pub use cer_cq::query::ConjunctiveQuery;
    pub use cer_lang::{compile_pattern, parse_pattern, pattern_to_pcea, CompiledPattern};
}

//! # pcea — Parallelized Complex Event Automata
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! implementation of *Complex event recognition meets hierarchical
//! conjunctive queries* (Pinto & Riveros, PODS 2024).
//!
//! * [`common`] — values, schemas, tuples, streams, workload generators;
//! * [`automata`] — NFA/DFA/PFA, predicates, CCEA and PCEA;
//! * [`cq`] — conjunctive queries, hierarchy tests, q-trees and the
//!   HCQ→PCEA compiler (Theorem 4.1);
//! * [`lang`] — a CER pattern language (`;`, `&&`, `|`, `+`, filters)
//!   compiled to PCEA — the paper's first future-work item;
//! * [`engine`] — the streaming evaluator with logarithmic update time and
//!   output-linear-delay enumeration (Theorem 5.1);
//! * [`baselines`] — naive and CCEA-specialized evaluators for comparison.
//!
//! ## Quickstart
//!
//! ```
//! use pcea::prelude::*;
//!
//! // Parse the paper's hierarchical query Q0 and compile it to a PCEA.
//! let mut schema = Schema::new();
//! let query = parse_query(&mut schema, "Q0(x, y) <- T(x), S(x, y), R(x, y)").unwrap();
//! let compiled = compile_hcq(&schema, &query).unwrap();
//!
//! // Evaluate it over the paper's example stream S0 under a sliding window.
//! let r = schema.relation("R").unwrap();
//! let s = schema.relation("S").unwrap();
//! let t = schema.relation("T").unwrap();
//! let mut engine = StreamingEvaluator::new(compiled.pcea, 100);
//! let mut n_outputs = 0;
//! for tuple in sigma0_prefix(r, s, t) {
//!     n_outputs += engine.push_count(&tuple);
//! }
//! assert_eq!(n_outputs, 2); // the two matches of Q0 on S0's first 8 tuples
//! ```

pub use cer_automata as automata;
pub use cer_baselines as baselines;
pub use cer_common as common;
pub use cer_core as engine;
pub use cer_cq as cq;
pub use cer_lang as lang;

/// One-stop imports for applications.
pub mod prelude {
    pub use cer_automata::pcea::{Pcea, PceaBuilder, StateId};
    pub use cer_automata::predicate::{CmpOp, EqPredicate, KeyExtractor, UnaryPredicate};
    pub use cer_automata::reference::ReferenceEval;
    pub use cer_automata::valuation::{Label, LabelSet, Valuation};
    pub use cer_common::gen::{
        sigma0_prefix, ChainGen, SensorGen, Sigma0Gen, StarGen, StockGen,
    };
    pub use cer_common::{Schema, SliceStream, Stream, StreamExt, Tuple, Value, VecStream};
    pub use cer_core::evaluator::{run_to_end, StreamingEvaluator};
    pub use cer_cq::compile::{compile_hcq, CompileError, CompiledQuery};
    pub use cer_cq::parser::{parse_query, QueryBuilder};
    pub use cer_cq::query::ConjunctiveQuery;
    pub use cer_lang::{compile_pattern, parse_pattern, pattern_to_pcea, CompiledPattern};
}
